#include "amr/sim/simulation.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "amr/common/check.hpp"
#include "amr/common/log.hpp"
#include "amr/common/stats.hpp"
#include "amr/placement/baseline.hpp"
#include "amr/placement/cplx.hpp"
#include "amr/placement/metrics.hpp"
#include "amr/sim/sim_state.hpp"

namespace amr {
namespace {

/// Real (host) wall-clock of a placement computation, in milliseconds —
/// the quantity the paper's 50 ms budget constrains.
template <typename Fn>
double timed_ms(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

std::string checkpoint_path(const std::string& dir, std::int64_t step) {
  return dir + "/ckpt_" + std::to_string(step) + ".amrs";
}

/// Stage-1 share of each block's compute when an overlap step runs
/// two-stage (packing active). Stage 1 is the interior update plus
/// ghost production; only the ghost-DEPENDENT boundary shell waits for
/// arrivals in stage 2. For a 64^3 block with a 2-cell ghost shell the
/// dependent fraction is ~1-(60/64)^3 ~ 18% of cells, so stage 1 gets
/// ~0.8 of the cost. A larger stage 1 shrinks the arrival-gated tail
/// that transfer latency can stall (the bench plateaus at ~0.8).
constexpr double kOverlapStageSplit = 0.8;

/// The run's packing policy as a pure function of the config: legacy
/// --aggregate packs everything, adaptive mode derives per-path
/// thresholds from the fabric model (or takes the global override).
/// Under BSP the receiver waits for all arrivals anyway, so deferring a
/// message into an aggregate is free and the model packs every pair;
/// only under overlap does packing delay the first ghost a dependent
/// block needs, which is where the per-peer threshold earns its keep.
PackingPolicy packing_policy(const SimulationConfig& cfg) {
  if (cfg.aggregate_messages) return PackingPolicy::all();
  if (!cfg.comm_adaptive) return PackingPolicy::none();
  PackingPolicy p;
  p.ranks_per_node = cfg.ranks_per_node;
  if (cfg.comm_pack_threshold >= 0) {
    p.shm_threshold = cfg.comm_pack_threshold;
    p.remote_threshold = cfg.comm_pack_threshold;
    return p;
  }
  if (cfg.execution == ExecutionMode::kBsp) return PackingPolicy::all();
  // Overlap runs two-stage with fused buffers: contributors write ghost
  // slabs into per-peer aggregates during stage-1 compute and receivers
  // read them in place, so packing costs no CPU on either side. Keeping
  // a pair eager saves at most its launch-delay serialization
  // (~bytes/wire_rate) but pays pack+unpack (~2*bytes/cpu_pack_rate);
  // with the CPU pack rate well below wire bandwidth that trade never
  // favors eager, so the modeled per-peer decision packs every
  // multi-message pair (singleton pairs still go eager — there is
  // nothing to coalesce). The finite fabric thresholds
  // (FabricParams::pack_threshold) price the BSP-style phase-packed
  // path and remain reachable via comm_pack_threshold for sweeps.
  return PackingPolicy::all();
}

}  // namespace

Simulation::Simulation(SimulationConfig config, Workload& workload,
                       const PlacementPolicy& policy)
    : config_(std::move(config)), workload_(workload), policy_(policy) {
  collector_.set_block_records(config_.collect_block_telemetry);
  if (config_.trace_enabled) {
    TraceConfig tc = config_.trace;
    tc.ranks_per_node = config_.ranks_per_node;
    tracer_ = std::make_unique<Tracer>(tc);
  }
}

Simulation::~Simulation() = default;

std::int64_t Simulation::current_step() const {
  return state_ ? state_->step : 0;
}

const StepPipelineStats& Simulation::pipeline_stats() const {
  static const StepPipelineStats kEmpty;
  return state_ ? state_->pipeline_stats : kEmpty;
}

std::int64_t Simulation::plan_share_hits() const {
  return runtime_ ? runtime_->plan_cache.stats().share_hits : 0;
}

bool Simulation::sync_measured_costs(const AmrMesh& mesh) {
  SimState& st = *state_;
  if (!st.measured_valid) return false;
  while (st.measured_version != mesh.version()) {
    const MeshRemap* r = mesh.remap_to(st.measured_version + 1);
    if (r == nullptr || r->old_size != st.measured_flat.size()) {
      // The regrid record aged out of the mesh's bounded history; the
      // carried telemetry can no longer be renumbered. Drop it — the
      // next placement sees uniform costs, exactly as on a cold start.
      st.measured_valid = false;
      ++st.pipeline_stats.telemetry_drops;
      return false;
    }
    auto& scratch = runtime_->cost_scratch;
    scratch.resize(r->src.size());
    for (std::size_t b = 0; b < r->src.size(); ++b) {
      const auto src = static_cast<std::size_t>(r->src[b]);
      switch (r->kind[b]) {
        case RemapKind::kCarried:
          scratch[b] = st.measured_flat[src];
          break;
        case RemapKind::kRefined:
          // Fresh refinement: inherit the measured cost of the ancestor.
          scratch[b] = st.measured_flat[src];
          break;
        case RemapKind::kCoarsened: {
          // Fresh coarsening: average of the eight collapsed children,
          // which occupy consecutive old IDs starting at src.
          TimeNs sum = 0;
          for (std::size_t c = 0; c < 8; ++c)
            sum += st.measured_flat[src + c];
          scratch[b] = sum / 8;
          break;
        }
      }
    }
    st.measured_flat.swap(scratch);
    ++st.measured_version;
  }
  return true;
}

bool Simulation::estimated_costs(const AmrMesh& mesh,
                                 std::vector<TimeNs>& out) {
  out.resize(mesh.size());
  if (!config_.telemetry_driven_costs || !sync_measured_costs(mesh)) {
    // Framework default: every block costs 1 (paper §V-A3).
    std::fill(out.begin(), out.end(), TimeNs{1});
    return false;
  }
  std::copy(state_->measured_flat.begin(), state_->measured_flat.end(),
            out.begin());
  return true;
}

void Simulation::remember_costs(const AmrMesh& mesh,
                                std::span<const TimeNs> measured) {
  state_->measured_flat.assign(measured.begin(), measured.end());
  state_->measured_version = mesh.version();
  state_->measured_valid = true;
}

void Simulation::previous_ranks(const AmrMesh& mesh,
                                std::uint64_t from_version,
                                const Placement& placement,
                                std::vector<std::int32_t>& prev_rank) {
  // Compose the renumbering records forward from the version the
  // placement was computed at: a block keeps its previous rank only while
  // it is carried; blocks created by refine/coarsen have none (-1).
  auto& a = runtime_->rank_scratch_a;
  auto& b_scr = runtime_->rank_scratch_b;
  a.assign(placement.begin(), placement.end());
  for (std::uint64_t v = from_version + 1; v <= mesh.version(); ++v) {
    const MeshRemap* r = mesh.remap_to(v);
    if (r == nullptr || r->old_size != a.size()) {
      prev_rank.assign(mesh.size(), -1);
      return;
    }
    b_scr.resize(r->src.size());
    for (std::size_t b = 0; b < r->src.size(); ++b)
      b_scr[b] = r->kind[b] == RemapKind::kCarried
                     ? a[static_cast<std::size_t>(r->src[b])]
                     : -1;
    a.swap(b_scr);
  }
  prev_rank = a;
}

void Simulation::begin_run() {
  // Adaptive-comm mode matrix: aggregation now composes with overlap
  // (packed arrivals credit per-block); the adaptive policy subsumes the
  // all-or-nothing flag, so the two are mutually exclusive, and the
  // global threshold override only means something under the adaptive
  // policy.
  AMR_CHECK_MSG(!(config_.aggregate_messages && config_.comm_adaptive),
                "aggregate_messages and comm_adaptive are mutually "
                "exclusive (adaptive packing subsumes the aggregate "
                "flag)");
  AMR_CHECK_MSG(config_.comm_pack_threshold < 0 || config_.comm_adaptive,
                "comm_pack_threshold requires comm_adaptive");
  AMR_CHECK_MSG(!(config_.des_shards > 0 &&
                  config_.execution == ExecutionMode::kOverlap),
                "sharded DES requires BSP execution (overlap self-events "
                "carry no dispatch keys)");
  AMR_CHECK_MSG(config_.cplx_budget_ms > 0.0,
                "cplx_budget_ms must be positive");
  // Sharded mode: the runtime's concurrent layers run untraced (shard
  // threads cannot share the ring); the driver still records its own
  // step-level events below.
  runtime_ = std::make_unique<SimRuntime>(
      config_, config_.des_shards > 0 ? nullptr : tracer_.get());
  state_ = std::make_unique<SimState>(config_);
  SimState& st = *state_;

  // Auto-X runs name the tuner, not the seed policy: the policy only
  // contributes the initial placement and the CPLX chunk width.
  st.report.policy = config_.auto_cplx ? "auto-cplx" : policy_.name();
  st.report.initial_blocks = st.mesh.size();
  st.report.rank_compute_seconds.assign(
      static_cast<std::size_t>(config_.nranks), 0.0);

  // Pre-size the telemetry tables for the expected row volume so the
  // per-step appends never reallocate mid-run.
  if (config_.collect_telemetry) {
    const auto steps = static_cast<std::size_t>(config_.steps);
    const auto nranks = static_cast<std::size_t>(config_.nranks);
    collector_.reserve(steps * nranks * 4, steps * nranks,
                       config_.collect_block_telemetry
                           ? steps * st.mesh.size()
                           : 0);
  }

  // Initial placement: no telemetry exists yet, costs default to uniform.
  {
    const std::vector<double> uniform(st.mesh.size(), 1.0);
    st.placement = policy_.place(uniform, config_.nranks);
  }
  begun_ = true;
}

void Simulation::step_once() {
  SimState& st = *state_;
  SimRuntime& rt = *runtime_;
  AmrMesh& mesh = st.mesh;
  Engine& engine = rt.engine;
  Tracer* const tracer = tracer_.get();
  RunReport& report = st.report;
  const std::int64_t step = st.step;
  // Simulated now regardless of DES mode (the sequential engine idles at
  // 0 when the sharded engine is driving).
  const auto sim_now = [&rt, &engine]() -> TimeNs {
    return rt.sharded ? rt.sharded->now() : engine.now();
  };

  // -- Mesh evolution + redistribution ------------------------------
  const std::uint64_t pre_evolve_version = mesh.version();
  const bool changed = workload_.evolve(mesh, step);
  if (tracer != nullptr && mesh.version() != pre_evolve_version) {
    // How much of the renumbering the delta merge preserved: carried
    // blocks re-keyed for free vs. total blocks, per regrid epoch.
    for (std::uint64_t v = pre_evolve_version + 1; v <= mesh.version();
         ++v) {
      const MeshRemap* r = mesh.remap_to(v);
      if (r != nullptr && !r->src.empty())
        tracer->counter(Tracer::kTrackSim, TraceCat::kRebalance,
                        "delta-carried-permille", sim_now(),
                        static_cast<std::int64_t>(r->carried * 1000 /
                                                  r->src.size()));
    }
  }
  if (changed || st.placement.size() != mesh.size() ||
      config_.trigger.fire(false, step, st.last_imbalance)) {
    ++report.lb_invocations;
    const bool costs_informative = estimated_costs(mesh, rt.est);
    rt.est_d.resize(rt.est.size());
    for (std::size_t i = 0; i < rt.est.size(); ++i)
      rt.est_d[i] = static_cast<double>(rt.est[i]);

    const bool engine_mode =
        config_.auto_cplx || config_.placement_incremental;
    const auto* cplx = dynamic_cast<const CplxPolicy*>(&policy_);
    // Input-identity token for the engine's whole-base fast path: a
    // placement input can only repeat exactly when both the mesh
    // numbering and the telemetry epoch that produced the costs repeat.
    const std::uint64_t cost_epoch =
        (mesh.version() << 32) ^ static_cast<std::uint64_t>(st.step);

    AutoXTuner::Decision decision;
    double observed_ns = 0.0;
    Placement next;
    if (config_.auto_cplx) {
      AutoXTuner& tuner = *rt.auto_tuner;
      // Close the loop on the previous epoch: mean executed-window wall
      // (simulated ns per step) under the placement the tuner chose.
      if (st.epoch_steps > 0) {
        observed_ns = static_cast<double>(st.epoch_wall_ns) /
                      static_cast<double>(st.epoch_steps);
        tuner.observe(st.tuner, observed_ns);
      }
      st.epoch_steps = 0;
      st.epoch_wall_ns = 0;
      const std::int32_t chunk = cplx != nullptr ? cplx->chunk_ranks() : 512;
      report.placement_ms.push_back(timed_ms([&] {
        tuner.budget_candidates(st.tuner, mesh.size(), rt.cand_indices);
        rt.cand_xs.resize(rt.cand_indices.size());
        for (std::size_t i = 0; i < rt.cand_indices.size(); ++i)
          rt.cand_xs[i] = tuner.config().candidates[static_cast<std::size_t>(
              rt.cand_indices[i])];
        rt.placement_engine.evaluate_candidates(
            rt.est_d, config_.nranks, rt.cand_xs, chunk, cost_epoch, mesh,
            rt.topo, config_.msg_sizes, rt.cand_evals);
        decision = tuner.choose(st.tuner, rt.cand_indices, rt.cand_evals);
        // Uninformative (uniform-default) cost estimates make mean_load
        // a meaningless scale: keep the decision pending so the measured
        // table still learns, but mark it unscaled so one garbage-scale
        // sample cannot poison the RLS weights.
        if (!costs_informative) st.tuner.last_scale = 0.0;
        if (std::getenv("AMR_TUNER_DEBUG") != nullptr) {
          for (std::size_t i = 0; i < rt.cand_evals.size(); ++i) {
            const CandidateEval& ce = rt.cand_evals[i];
            std::fprintf(stderr,
                         "[tuner] step=%lld x=%.0f mean=%.3g imb=%.3f "
                         "rs=%.3f pred=%.3g score=%.3g resid=%.3f\n",
                         static_cast<long long>(step), ce.x_percent,
                         ce.mean_load, ce.imbalance, ce.remote_share,
                         AutoXTuner::predict(st.tuner, ce, ce.mean_load),
                         AutoXTuner::scored(st.tuner, ce, ce.mean_load,
                                            rt.cand_indices[i]),
                         st.tuner.resid[static_cast<std::size_t>(
                             rt.cand_indices[i])]);
          }
          std::fprintf(stderr,
                       "[tuner] -> chose x=%.0f mode=%d w=(%.3g,%.3g,%.3g)\n",
                       tuner.config().candidates[static_cast<std::size_t>(
                           decision.candidate)],
                       decision.mode, st.tuner.w[0], st.tuner.w[1],
                       st.tuner.w[2]);
        }
        next = std::move(
            rt.cand_evals[static_cast<std::size_t>(decision.slot)].placement);
      }));
    } else if (config_.placement_incremental && cplx != nullptr) {
      report.placement_ms.push_back(timed_ms([&] {
        next = rt.placement_engine.place_cplx(rt.est_d, config_.nranks,
                                              cplx->x_percent(),
                                              cplx->chunk_ranks(), cost_epoch);
      }));
    } else {
      report.placement_ms.push_back(timed_ms(
          [&] { next = policy_.place(rt.est_d, config_.nranks); }));
    }
    AMR_CHECK(placement_valid(next, mesh.size(), config_.nranks));
    if (report.placement_ms.back() > config_.placement_budget_ms) {
      ++report.budget_violations;
      if (config_.enforce_placement_budget) {
        // Over budget: fall back to the always-cheap baseline split
        // for this invocation (the paper's hard 50 ms constraint).
        next = BaselinePolicy().place(rt.est_d, config_.nranks);
      }
    }

    // Migration: blocks whose rank changed move their payload; charge
    // the slowest rank's transfer plus the placement-computation
    // budget as the rebalance wall for this invocation. A block's
    // previous rank follows the renumbering records; freshly
    // refined/coarsened blocks have none and migrate for free.
    previous_ranks(mesh, st.placement_mesh_version, st.placement,
                   rt.prev_rank);
    rt.migrate_bytes.assign(static_cast<std::size_t>(config_.nranks), 0);
    std::int64_t moved = 0;
    for (std::size_t b = 0; b < mesh.size(); ++b) {
      const std::int32_t old_rank = rt.prev_rank[b];
      if (old_rank >= 0 && old_rank != next[b]) {
        ++moved;
        rt.migrate_bytes[static_cast<std::size_t>(old_rank)] +=
            config_.migrated_block_bytes;
        rt.migrate_bytes[static_cast<std::size_t>(next[b])] +=
            config_.migrated_block_bytes;
      }
    }
    report.blocks_migrated += moved;
    const std::int64_t max_bytes = *std::max_element(
        rt.migrate_bytes.begin(), rt.migrate_bytes.end());
    const TimeNs migration =
        static_cast<TimeNs>(static_cast<double>(max_bytes) /
                            config_.migration_gbytes_per_sec);
    const TimeNs rebalance_wall = migration + config_.placement_charge;
    if (tracer != nullptr)
      tracer->complete(Tracer::kTrackSim, TraceCat::kRebalance,
                       "rebalance", sim_now(), rebalance_wall, moved,
                       step);
    if (rt.sharded)
      rt.sharded->run_until(rt.sharded->now() + rebalance_wall);
    else
      engine.run_until(engine.now() + rebalance_wall);

    const double rebalance_s = to_sec(rebalance_wall);
    report.phases.rebalance += rebalance_s;
    if (config_.collect_telemetry) {
      for (std::int32_t r = 0; r < config_.nranks; ++r)
        collector_.record_phase(step, r, Phase::kRebalance,
                                rebalance_wall);
    }

    // Placement-phase telemetry + trace counters: engine modes only, so
    // legacy tables/traces (and serve's resident-bytes eviction signal)
    // stay byte-identical. Everything recorded is simulated/deterministic.
    if (engine_mode) {
      const double x_chosen =
          config_.auto_cplx
              ? rt.auto_tuner->config()
                    .candidates[static_cast<std::size_t>(decision.candidate)]
              : (cplx != nullptr ? cplx->x_percent() : -1.0);
      if (config_.collect_telemetry) {
        collector_.record_placement(
            step, x_chosen, config_.auto_cplx ? decision.mode : -1,
            config_.auto_cplx
                ? static_cast<std::int64_t>(rt.cand_indices.size())
                : 0,
            rt.placement_engine.last_chunks_reused(),
            rt.placement_engine.last_chunks_total(), moved,
            decision.predicted_ns, observed_ns, st.tuner.err_ewma);
      }
      if (tracer != nullptr) {
        if (config_.auto_cplx) {
          tracer->counter(Tracer::kTrackSim, TraceCat::kRebalance, "auto-x",
                          sim_now(),
                          static_cast<std::int64_t>(x_chosen));
          tracer->counter(Tracer::kTrackSim, TraceCat::kRebalance,
                          "tuner-fallback-epochs", sim_now(),
                          st.tuner.fallback_epochs);
        }
        tracer->counter(Tracer::kTrackSim, TraceCat::kRebalance,
                        "placement-chunks-reused", sim_now(),
                        rt.placement_engine.stats().chunks_reused);
      }
    }

    // Plan-key skip: when the engine modes are on and redistribution
    // reproduced the current placement under an unchanged mesh numbering,
    // keep the (mesh, placement) version pair so the exchange-plan cache
    // serves the next step instead of rebuilding identical plans. The
    // legacy path always bumps (the off-mode byte-identity reference).
    const bool plan_reusable = engine_mode &&
                               mesh.version() == st.placement_mesh_version &&
                               next == st.placement;
    st.placement = std::move(next);
    if (!plan_reusable) ++st.placement_version;
    st.placement_mesh_version = mesh.version();
  }

  // -- Fault transitions (trace instants at onset/clear edges) -------
  if (tracer != nullptr && !config_.faults.empty()) {
    const auto active = config_.faults.active_at(step);
    for (const ActiveFault& f : active) {
      const bool was_active = std::any_of(
          st.prev_faults.begin(), st.prev_faults.end(),
          [&](const ActiveFault& p) { return p.node == f.node; });
      if (!was_active)
        tracer->instant(Tracer::kTrackSim, TraceCat::kFault,
                        "fault-onset", sim_now(), f.node,
                        static_cast<std::int64_t>(f.factor * 100.0));
    }
    for (const ActiveFault& p : st.prev_faults) {
      const bool still_active = std::any_of(
          active.begin(), active.end(),
          [&](const ActiveFault& f) { return f.node == p.node; });
      if (!still_active)
        tracer->instant(Tracer::kTrackSim, TraceCat::kFault,
                        "fault-clear", sim_now(), p.node,
                        static_cast<std::int64_t>(p.factor * 100.0));
    }
    st.prev_faults = active;
  }

  // -- True per-block compute costs (workload x hardware faults) ----
  rt.costs.resize(mesh.size());
  for (std::size_t b = 0; b < mesh.size(); ++b) {
    const double factor = config_.faults.compute_multiplier(
        rt.topo.node_of(st.placement[b]), step);
    rt.costs[b] = static_cast<TimeNs>(
        static_cast<double>(workload_.block_cost(mesh, b, step)) * factor);
  }

  // -- Execute the step ----------------------------------------------
  // Predicted cache behaviour depends only on the version pair, so it
  // is identical whether or not the cache actually runs — which keeps
  // the emitted counters byte-identical across pipeline modes (and
  // across checkpoint/restore, where the live cache is rebuilt).
  const bool predicted_hit = st.have_plan_key &&
                             st.last_plan_mesh == mesh.version() &&
                             st.last_plan_placement == st.placement_version;
  ++(predicted_hit ? st.pipeline_stats.predicted_hits
                   : st.pipeline_stats.predicted_misses);
  st.have_plan_key = true;
  st.last_plan_mesh = mesh.version();
  st.last_plan_placement = st.placement_version;
  if (tracer != nullptr) {
    tracer->counter(Tracer::kTrackSim, TraceCat::kRebalance,
                    "plan-cache-hits", sim_now(),
                    st.pipeline_stats.predicted_hits);
    tracer->counter(Tracer::kTrackSim, TraceCat::kRebalance,
                    "plan-cache-misses", sim_now(),
                    st.pipeline_stats.predicted_misses);
  }

  const TimeNs exec_start = sim_now();
  StepResult result;
  std::int64_t intra_rank_msgs = 0;
  const PackingPolicy packing = packing_policy(config_);
  // Critical-path send priority: the previous window's straggler is the
  // predicted critical-path successor; its feeders launch first.
  const std::int32_t priority_rank =
      config_.send_priority ? st.last_straggler : -1;
  if (config_.execution == ExecutionMode::kBsp) {
    std::span<const RankStepWork> work;
    if (config_.incremental_plans) {
      work = rt.plan_cache.step_work(mesh, st.placement,
                                     st.placement_version, rt.costs,
                                     config_.nranks, config_.msg_sizes,
                                     config_.include_flux_correction,
                                     packing);
    } else {
      rt.fresh_bsp = build_step_work(
          mesh, st.placement, rt.costs, config_.nranks, config_.msg_sizes,
          config_.include_flux_correction, packing);
      work = rt.fresh_bsp;
    }
    result = rt.bsp_executor->execute(work, config_.ordering,
                                      static_cast<std::uint64_t>(step),
                                      priority_rank);
    for (const auto& w : work) intra_rank_msgs += w.local_copy_msgs;
  } else {
    // With packing active the step runs two-stage: stage-1 compute
    // produces the ghosts, so per-peer aggregates launch incrementally
    // as their last contributor finishes instead of queueing the whole
    // exchange at step start. Packing-off keeps the legacy single-stage
    // plan (previous-step ghosts), bit-identical to pre-adaptive runs.
    const double stage_frac = packing.active() ? kOverlapStageSplit : 0.0;
    std::span<const OverlapRankWork> work;
    if (config_.incremental_plans) {
      work = rt.plan_cache.overlap_work(mesh, st.placement,
                                        st.placement_version, rt.costs,
                                        config_.nranks, config_.msg_sizes,
                                        packing, stage_frac);
    } else {
      rt.fresh_overlap =
          stage_frac > 0.0
              ? build_two_stage_work(mesh, st.placement, rt.costs,
                                     config_.nranks, stage_frac,
                                     config_.msg_sizes, packing)
              : build_overlap_work(mesh, st.placement, rt.costs,
                                   config_.nranks, config_.msg_sizes,
                                   packing);
      work = rt.fresh_overlap;
    }
    result = rt.overlap_executor->execute(
        work, static_cast<std::uint64_t>(step), priority_rank);
    for (const auto& w : work) intra_rank_msgs += w.local_copy_msgs;
  }
  report.msgs_intra_rank += intra_rank_msgs;
  if (config_.auto_cplx) {
    // Executed-window wall feeds the tuner at the next redistribution
    // (simulated time: deterministic and checkpoint-stable).
    ++st.epoch_steps;
    st.epoch_wall_ns += sim_now() - exec_start;
  }
  const WindowPath path = rt.critical_path.observe(result);
  st.last_straggler = path.straggler;

  // -- Critical-path overlay (paper §IV-D) ---------------------------
  // A dedicated track carries one span per window naming the modeled
  // critical path; the straggler's own track gets an instant so the
  // path is visible in rank context too.
  if (tracer != nullptr && path.straggler >= 0) {
    const RankStepStats& straggler_stats =
        result.ranks[static_cast<std::size_t>(path.straggler)];
    tracer->complete(
        Tracer::kTrackCrit, TraceCat::kCritPath,
        path.two_rank ? "crit:2-rank" : "crit:1-rank", result.step_start,
        straggler_stats.collective_entry - result.step_start,
        path.straggler, path.release_src);
    tracer->instant(path.straggler, TraceCat::kCritPath,
                    "on-critical-path", straggler_stats.collective_entry,
                    step, path.release_src);
  }

  // Measured compute imbalance feeds the optional rebalance trigger.
  {
    RunningStats s;
    for (const auto& r : result.ranks)
      s.add(static_cast<double>(r.compute_ns));
    st.last_imbalance = s.mean() > 0.0 ? s.max() / s.mean() : 1.0;
  }

  // -- Telemetry ------------------------------------------------------
  // Measured cost = what the profiler sees: the fault-inflated kernel
  // time. Placement models are built from this, which is precisely why
  // fail-slow hardware must be pruned rather than "balanced around".
  remember_costs(mesh, rt.costs);

  const double inv_ranks = 1.0 / static_cast<double>(config_.nranks);
  for (std::size_t r = 0; r < result.ranks.size(); ++r) {
    const RankStepStats& s = result.ranks[r];
    report.phases.compute += to_sec(s.compute_ns) * inv_ranks;
    report.phases.comm += to_sec(s.comm_ns()) * inv_ranks;
    report.phases.sync += to_sec(s.sync_ns) * inv_ranks;
    report.rank_compute_seconds[r] += to_sec(s.compute_ns);
    report.msgs_local += s.msgs_local;
    report.msgs_remote += s.msgs_remote;
    report.bytes_local += s.bytes_local;
    report.bytes_remote += s.bytes_remote;
    report.msgs_coalesced += s.msgs_coalesced;
    report.bytes_packed += s.bytes_packed;
    if (config_.collect_telemetry) {
      const auto rank = static_cast<std::int32_t>(r);
      collector_.record_phase(step, rank, Phase::kCompute, s.compute_ns);
      collector_.record_phase(step, rank, Phase::kComm, s.comm_ns());
      collector_.record_phase(step, rank, Phase::kSync, s.sync_ns);
      collector_.record_comm(step, rank, s.msgs_local, s.msgs_remote,
                             s.bytes_local, s.bytes_remote, s.send_wait_ns,
                             s.recv_wait_ns, s.msgs_coalesced,
                             s.bytes_packed);
    }
    if (config_.collect_block_telemetry) {
      for (std::size_t b = 0; b < mesh.size(); ++b)
        if (st.placement[b] == static_cast<std::int32_t>(r))
          collector_.record_block(step, static_cast<std::int32_t>(b),
                                  st.placement[b], rt.costs[b]);
    }
  }

  // Cumulative aggregation counters on the sim track. Emitted only when
  // some packing mode is on so legacy traces stay byte-identical.
  if (tracer != nullptr &&
      (config_.aggregate_messages || config_.comm_adaptive)) {
    tracer->counter(Tracer::kTrackSim, TraceCat::kMsg, "msgs_coalesced",
                    sim_now(), report.msgs_coalesced);
    tracer->counter(Tracer::kTrackSim, TraceCat::kMsg, "bytes_packed",
                    sim_now(), report.bytes_packed);
  }

  // Per-shard epoch counters (sharded mode): shard-imbalance visibility
  // in both the telemetry tables and the Perfetto timeline. Emitted by
  // the coordinator after the step, so the trace ring sees one thread.
  if (rt.sharded) {
    for (std::size_t s = 0; s < result.shards.size(); ++s) {
      const ShardEpochStats& ss = result.shards[s];
      const auto shard = static_cast<std::int32_t>(s);
      if (config_.collect_telemetry)
        collector_.record_shard(step, shard, ss.events, ss.epochs,
                                ss.lookahead_stalls, ss.mailbox_events);
      if (tracer != nullptr) {
        const std::int32_t track = Tracer::shard_track(shard);
        tracer->counter(track, TraceCat::kStep, "shard_events", sim_now(),
                        ss.events);
        tracer->counter(track, TraceCat::kStep, "shard_stalls", sim_now(),
                        ss.lookahead_stalls);
        tracer->counter(track, TraceCat::kStep, "shard_mailbox", sim_now(),
                        ss.mailbox_events);
      }
    }
  }

  ++st.step;
}

RunReport Simulation::finish_run() {
  SimState& st = *state_;
  st.pipeline_stats.plan_hits =
      st.plan_hits_base + runtime_->plan_cache.stats().hits;
  st.pipeline_stats.plan_misses =
      st.plan_misses_base + runtime_->plan_cache.stats().misses;
  st.pipeline_stats.plan_share_hits =
      runtime_->plan_cache.stats().share_hits;

  st.report.steps = config_.steps;
  st.report.final_blocks = st.mesh.size();
  st.report.wall_seconds = to_sec(runtime_->sharded
                                      ? runtime_->sharded->now()
                                      : runtime_->engine.now());
  st.report.critical_path = runtime_->critical_path.stats();
  return st.report;
}

void Simulation::begin() {
  if (!begun_) begin_run();
}

bool Simulation::done() const {
  return state_ != nullptr && state_->step >= config_.steps;
}

std::int64_t Simulation::advance(std::int64_t max_steps) {
  begin();
  std::int64_t executed = 0;
  while (executed < max_steps && state_->step < config_.steps) {
    step_once();
    ++executed;
    if (config_.checkpoint_every > 0 &&
        state_->step % config_.checkpoint_every == 0 &&
        state_->step < config_.steps) {
      const std::string path =
          checkpoint_path(config_.checkpoint_dir, state_->step);
      AMR_CHECK_MSG(save_checkpoint(path), "failed to write checkpoint");
    }
  }
  return executed;
}

RunReport Simulation::finish() {
  AMR_CHECK_MSG(begun_ && done(),
                "finish() requires a begun run at its step horizon");
  RunReport report = finish_run();
  begun_ = false;  // a further run()/begin() starts over
  return report;
}

std::size_t Simulation::resident_bytes() const {
  if (state_ == nullptr) return 0;
  // Per-block: coords + placement + true/measured/estimated costs, plus
  // the exchange plans' dominant share (neighbor sends, receive counts,
  // compute slots — empirically a few hundred bytes per block at the
  // paper's connectivity). Per-rank: fabric NIC/slot state and executor
  // endpoints. The constant covers topology, engine arena, and scratch.
  const std::size_t per_block = sizeof(BlockCoord) +
                                sizeof(std::int32_t) + 3 * sizeof(TimeNs) +
                                256;
  return (std::size_t{1} << 16) + state_->mesh.size() * per_block +
         static_cast<std::size_t>(config_.nranks) * 512 +
         collector_.bytes_used();
}

RunReport Simulation::run() {
  begin();
  while (!done()) advance(config_.steps);
  return finish();
}

bool Simulation::save_checkpoint(const std::string& path) const {
  AMR_CHECK_MSG(begun_ && state_ != nullptr,
                "save_checkpoint requires a begun run");
  return save_snapshot(path, config_, *state_, *runtime_, workload_,
                       collector_, tracer_.get());
}

void Simulation::restore_checkpoint(const std::string& path) {
  begin_run();
  restore_snapshot(path, config_, *state_, *runtime_, workload_,
                   collector_, tracer_.get());
  // The active policy names the run: identical for a plain restore,
  // the replacement's name under --replay. Auto-X overrides either way
  // (the tuner, not the seed policy, is making the decisions).
  state_->report.policy =
      config_.auto_cplx ? "auto-cplx" : policy_.name();
}

}  // namespace amr
