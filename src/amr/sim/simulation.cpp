#include "amr/sim/simulation.hpp"

#include <algorithm>
#include <chrono>

#include "amr/common/check.hpp"
#include "amr/common/log.hpp"
#include "amr/common/stats.hpp"
#include "amr/exec/plan_cache.hpp"
#include "amr/exec/step_executor.hpp"
#include "amr/placement/baseline.hpp"
#include "amr/placement/metrics.hpp"

namespace amr {
namespace {

/// Real (host) wall-clock of a placement computation, in milliseconds —
/// the quantity the paper's 50 ms budget constrains.
template <typename Fn>
double timed_ms(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

Simulation::Simulation(SimulationConfig config, Workload& workload,
                       const PlacementPolicy& policy)
    : config_(std::move(config)), workload_(workload), policy_(policy) {
  collector_.set_block_records(config_.collect_block_telemetry);
  if (config_.trace_enabled) {
    TraceConfig tc = config_.trace;
    tc.ranks_per_node = config_.ranks_per_node;
    tracer_ = std::make_unique<Tracer>(tc);
  }
}

bool Simulation::sync_measured_costs(const AmrMesh& mesh) {
  if (!measured_valid_) return false;
  while (measured_version_ != mesh.version()) {
    const MeshRemap* r = mesh.remap_to(measured_version_ + 1);
    if (r == nullptr || r->old_size != measured_flat_.size()) {
      // The regrid record aged out of the mesh's bounded history; the
      // carried telemetry can no longer be renumbered. Drop it — the
      // next placement sees uniform costs, exactly as on a cold start.
      measured_valid_ = false;
      ++pipeline_stats_.telemetry_drops;
      return false;
    }
    cost_scratch_.resize(r->src.size());
    for (std::size_t b = 0; b < r->src.size(); ++b) {
      const auto src = static_cast<std::size_t>(r->src[b]);
      switch (r->kind[b]) {
        case RemapKind::kCarried:
          cost_scratch_[b] = measured_flat_[src];
          break;
        case RemapKind::kRefined:
          // Fresh refinement: inherit the measured cost of the ancestor.
          cost_scratch_[b] = measured_flat_[src];
          break;
        case RemapKind::kCoarsened: {
          // Fresh coarsening: average of the eight collapsed children,
          // which occupy consecutive old IDs starting at src.
          TimeNs sum = 0;
          for (std::size_t c = 0; c < 8; ++c)
            sum += measured_flat_[src + c];
          cost_scratch_[b] = sum / 8;
          break;
        }
      }
    }
    measured_flat_.swap(cost_scratch_);
    ++measured_version_;
  }
  return true;
}

void Simulation::estimated_costs(const AmrMesh& mesh,
                                 std::vector<TimeNs>& out) {
  out.resize(mesh.size());
  if (!config_.telemetry_driven_costs || !sync_measured_costs(mesh)) {
    // Framework default: every block costs 1 (paper §V-A3).
    std::fill(out.begin(), out.end(), TimeNs{1});
    return;
  }
  std::copy(measured_flat_.begin(), measured_flat_.end(), out.begin());
}

void Simulation::remember_costs(const AmrMesh& mesh,
                                std::span<const TimeNs> measured) {
  measured_flat_.assign(measured.begin(), measured.end());
  measured_version_ = mesh.version();
  measured_valid_ = true;
}

void Simulation::previous_ranks(const AmrMesh& mesh,
                                std::uint64_t from_version,
                                const Placement& placement,
                                std::vector<std::int32_t>& prev_rank) {
  // Compose the renumbering records forward from the version the
  // placement was computed at: a block keeps its previous rank only while
  // it is carried; blocks created by refine/coarsen have none (-1).
  rank_scratch_a_.assign(placement.begin(), placement.end());
  for (std::uint64_t v = from_version + 1; v <= mesh.version(); ++v) {
    const MeshRemap* r = mesh.remap_to(v);
    if (r == nullptr || r->old_size != rank_scratch_a_.size()) {
      prev_rank.assign(mesh.size(), -1);
      return;
    }
    rank_scratch_b_.resize(r->src.size());
    for (std::size_t b = 0; b < r->src.size(); ++b)
      rank_scratch_b_[b] =
          r->kind[b] == RemapKind::kCarried
              ? rank_scratch_a_[static_cast<std::size_t>(r->src[b])]
              : -1;
    rank_scratch_a_.swap(rank_scratch_b_);
  }
  prev_rank = rank_scratch_a_;
}

RunReport Simulation::run() {
  const ClusterTopology topo(config_.nranks, config_.ranks_per_node);
  Engine engine;
  Rng rng(config_.seed);
  Fabric fabric(topo, config_.fabric, rng.split(0xfab));
  Comm comm(engine, fabric, config_.nranks, config_.collective);
  Tracer* const tracer = tracer_.get();
  engine.set_tracer(tracer);
  fabric.set_tracer(tracer);
  comm.set_tracer(tracer);
  // Exactly one executor registers rank endpoints on the comm.
  std::unique_ptr<StepExecutor> bsp_executor;
  std::unique_ptr<OverlapExecutor> overlap_executor;
  if (config_.execution == ExecutionMode::kBsp)
    bsp_executor = std::make_unique<StepExecutor>(engine, comm,
                                                  config_.exec, tracer);
  else
    overlap_executor = std::make_unique<OverlapExecutor>(
        engine, comm, config_.exec, tracer);
  CriticalPathAnalyzer critical_path;
  std::vector<ActiveFault> prev_faults;

  AmrMesh mesh(config_.root_grid);
  pipeline_stats_ = {};
  measured_valid_ = false;
  RunReport report;
  report.policy = policy_.name();
  report.initial_blocks = mesh.size();
  report.rank_compute_seconds.assign(
      static_cast<std::size_t>(config_.nranks), 0.0);

  // Pre-size the telemetry tables for the expected row volume so the
  // per-step appends never reallocate mid-run.
  if (config_.collect_telemetry) {
    const auto steps = static_cast<std::size_t>(config_.steps);
    const auto nranks = static_cast<std::size_t>(config_.nranks);
    collector_.reserve(steps * nranks * 4, steps * nranks,
                       config_.collect_block_telemetry
                           ? steps * mesh.size()
                           : 0);
  }

  // Initial placement: no telemetry exists yet, costs default to uniform.
  Placement placement;
  {
    const std::vector<double> uniform(mesh.size(), 1.0);
    placement = policy_.place(uniform, config_.nranks);
  }
  // The version pair (mesh.version(), placement_version) keys the
  // exchange-plan cache; a rebalance bumps the placement side, a regrid
  // the mesh side. placement_mesh_version remembers which numbering the
  // current placement refers to, for migration accounting across regrids.
  std::uint64_t placement_version = 0;
  std::uint64_t placement_mesh_version = mesh.version();
  ExchangePlanCache plan_cache;
  bool have_plan_key = false;
  std::uint64_t last_plan_mesh = 0, last_plan_placement = 0;

  // Step-loop scratch, reused across all steps.
  std::vector<TimeNs> est;
  std::vector<double> est_d;
  std::vector<std::int32_t> prev_rank;
  std::vector<std::int64_t> migrate_bytes;
  std::vector<TimeNs> costs;
  std::vector<RankStepWork> fresh_bsp;
  std::vector<OverlapRankWork> fresh_overlap;

  double last_imbalance = 1.0;  // measured max/mean compute of last step

  for (std::int64_t step = 0; step < config_.steps; ++step) {
    // -- Mesh evolution + redistribution ------------------------------
    const std::uint64_t pre_evolve_version = mesh.version();
    const bool changed = workload_.evolve(mesh, step);
    if (tracer != nullptr && mesh.version() != pre_evolve_version) {
      // How much of the renumbering the delta merge preserved: carried
      // blocks re-keyed for free vs. total blocks, per regrid epoch.
      for (std::uint64_t v = pre_evolve_version + 1; v <= mesh.version();
           ++v) {
        const MeshRemap* r = mesh.remap_to(v);
        if (r != nullptr && !r->src.empty())
          tracer->counter(Tracer::kTrackSim, TraceCat::kRebalance,
                          "delta-carried-permille", engine.now(),
                          static_cast<std::int64_t>(r->carried * 1000 /
                                                    r->src.size()));
      }
    }
    if (changed || placement.size() != mesh.size() ||
        config_.trigger.fire(false, step, last_imbalance)) {
      ++report.lb_invocations;
      estimated_costs(mesh, est);
      est_d.resize(est.size());
      for (std::size_t i = 0; i < est.size(); ++i)
        est_d[i] = static_cast<double>(est[i]);

      Placement next;
      report.placement_ms.push_back(timed_ms(
          [&] { next = policy_.place(est_d, config_.nranks); }));
      AMR_CHECK(placement_valid(next, mesh.size(), config_.nranks));
      if (report.placement_ms.back() > config_.placement_budget_ms) {
        ++report.budget_violations;
        if (config_.enforce_placement_budget) {
          // Over budget: fall back to the always-cheap baseline split
          // for this invocation (the paper's hard 50 ms constraint).
          next = BaselinePolicy().place(est_d, config_.nranks);
        }
      }

      // Migration: blocks whose rank changed move their payload; charge
      // the slowest rank's transfer plus the placement-computation
      // budget as the rebalance wall for this invocation. A block's
      // previous rank follows the renumbering records; freshly
      // refined/coarsened blocks have none and migrate for free.
      previous_ranks(mesh, placement_mesh_version, placement, prev_rank);
      migrate_bytes.assign(static_cast<std::size_t>(config_.nranks), 0);
      std::int64_t moved = 0;
      for (std::size_t b = 0; b < mesh.size(); ++b) {
        const std::int32_t old_rank = prev_rank[b];
        if (old_rank >= 0 && old_rank != next[b]) {
          ++moved;
          migrate_bytes[static_cast<std::size_t>(old_rank)] +=
              config_.migrated_block_bytes;
          migrate_bytes[static_cast<std::size_t>(next[b])] +=
              config_.migrated_block_bytes;
        }
      }
      report.blocks_migrated += moved;
      const std::int64_t max_bytes =
          *std::max_element(migrate_bytes.begin(), migrate_bytes.end());
      const TimeNs migration =
          static_cast<TimeNs>(static_cast<double>(max_bytes) /
                              config_.migration_gbytes_per_sec);
      const TimeNs rebalance_wall = migration + config_.placement_charge;
      if (tracer != nullptr)
        tracer->complete(Tracer::kTrackSim, TraceCat::kRebalance,
                         "rebalance", engine.now(), rebalance_wall, moved,
                         step);
      engine.run_until(engine.now() + rebalance_wall);

      const double rebalance_s = to_sec(rebalance_wall);
      report.phases.rebalance += rebalance_s;
      if (config_.collect_telemetry) {
        for (std::int32_t r = 0; r < config_.nranks; ++r)
          collector_.record_phase(step, r, Phase::kRebalance,
                                  rebalance_wall);
      }

      placement = std::move(next);
      ++placement_version;
      placement_mesh_version = mesh.version();
    }

    // -- Fault transitions (trace instants at onset/clear edges) -------
    if (tracer != nullptr && !config_.faults.empty()) {
      const auto active = config_.faults.active_at(step);
      for (const ActiveFault& f : active) {
        const bool was_active = std::any_of(
            prev_faults.begin(), prev_faults.end(),
            [&](const ActiveFault& p) { return p.node == f.node; });
        if (!was_active)
          tracer->instant(Tracer::kTrackSim, TraceCat::kFault,
                          "fault-onset", engine.now(), f.node,
                          static_cast<std::int64_t>(f.factor * 100.0));
      }
      for (const ActiveFault& p : prev_faults) {
        const bool still_active = std::any_of(
            active.begin(), active.end(),
            [&](const ActiveFault& f) { return f.node == p.node; });
        if (!still_active)
          tracer->instant(Tracer::kTrackSim, TraceCat::kFault,
                          "fault-clear", engine.now(), p.node,
                          static_cast<std::int64_t>(p.factor * 100.0));
      }
      prev_faults = active;
    }

    // -- True per-block compute costs (workload x hardware faults) ----
    costs.resize(mesh.size());
    for (std::size_t b = 0; b < mesh.size(); ++b) {
      const double factor = config_.faults.compute_multiplier(
          topo.node_of(placement[b]), step);
      costs[b] = static_cast<TimeNs>(
          static_cast<double>(workload_.block_cost(mesh, b, step)) *
          factor);
    }

    // -- Execute the step ----------------------------------------------
    // Predicted cache behaviour depends only on the version pair, so it
    // is identical whether or not the cache actually runs — which keeps
    // the emitted counters byte-identical across pipeline modes.
    const bool predicted_hit = have_plan_key &&
                               last_plan_mesh == mesh.version() &&
                               last_plan_placement == placement_version;
    ++(predicted_hit ? pipeline_stats_.predicted_hits
                     : pipeline_stats_.predicted_misses);
    have_plan_key = true;
    last_plan_mesh = mesh.version();
    last_plan_placement = placement_version;
    if (tracer != nullptr) {
      tracer->counter(Tracer::kTrackSim, TraceCat::kRebalance,
                      "plan-cache-hits", engine.now(),
                      pipeline_stats_.predicted_hits);
      tracer->counter(Tracer::kTrackSim, TraceCat::kRebalance,
                      "plan-cache-misses", engine.now(),
                      pipeline_stats_.predicted_misses);
    }

    StepResult result;
    std::int64_t intra_rank_msgs = 0;
    if (config_.execution == ExecutionMode::kBsp) {
      std::span<const RankStepWork> work;
      if (config_.incremental_plans) {
        work = plan_cache.step_work(mesh, placement, placement_version,
                                    costs, config_.nranks,
                                    config_.msg_sizes,
                                    config_.include_flux_correction);
      } else {
        fresh_bsp = build_step_work(
            mesh, placement, costs, config_.nranks, config_.msg_sizes,
            config_.include_flux_correction);
        work = fresh_bsp;
      }
      result = bsp_executor->execute(work, config_.ordering,
                                     static_cast<std::uint64_t>(step));
      for (const auto& w : work) intra_rank_msgs += w.local_copy_msgs;
    } else {
      std::span<const OverlapRankWork> work;
      if (config_.incremental_plans) {
        work = plan_cache.overlap_work(mesh, placement, placement_version,
                                       costs, config_.nranks,
                                       config_.msg_sizes);
      } else {
        fresh_overlap = build_overlap_work(
            mesh, placement, costs, config_.nranks, config_.msg_sizes);
        work = fresh_overlap;
      }
      result = overlap_executor->execute(
          work, static_cast<std::uint64_t>(step));
      for (const auto& w : work) intra_rank_msgs += w.local_copy_msgs;
    }
    report.msgs_intra_rank += intra_rank_msgs;
    const WindowPath path = critical_path.observe(result);

    // -- Critical-path overlay (paper §IV-D) ---------------------------
    // A dedicated track carries one span per window naming the modeled
    // critical path; the straggler's own track gets an instant so the
    // path is visible in rank context too.
    if (tracer != nullptr && path.straggler >= 0) {
      const RankStepStats& straggler_stats =
          result.ranks[static_cast<std::size_t>(path.straggler)];
      tracer->complete(
          Tracer::kTrackCrit, TraceCat::kCritPath,
          path.two_rank ? "crit:2-rank" : "crit:1-rank",
          result.step_start,
          straggler_stats.collective_entry - result.step_start,
          path.straggler, path.release_src);
      tracer->instant(path.straggler, TraceCat::kCritPath,
                      "on-critical-path", straggler_stats.collective_entry,
                      step, path.release_src);
    }

    // Measured compute imbalance feeds the optional rebalance trigger.
    {
      RunningStats s;
      for (const auto& r : result.ranks)
        s.add(static_cast<double>(r.compute_ns));
      last_imbalance = s.mean() > 0.0 ? s.max() / s.mean() : 1.0;
    }

    // -- Telemetry ------------------------------------------------------
    // Measured cost = what the profiler sees: the fault-inflated kernel
    // time. Placement models are built from this, which is precisely why
    // fail-slow hardware must be pruned rather than "balanced around".
    remember_costs(mesh, costs);

    const double inv_ranks = 1.0 / static_cast<double>(config_.nranks);
    for (std::size_t r = 0; r < result.ranks.size(); ++r) {
      const RankStepStats& s = result.ranks[r];
      report.phases.compute += to_sec(s.compute_ns) * inv_ranks;
      report.phases.comm += to_sec(s.comm_ns()) * inv_ranks;
      report.phases.sync += to_sec(s.sync_ns) * inv_ranks;
      report.rank_compute_seconds[r] += to_sec(s.compute_ns);
      report.msgs_local += s.msgs_local;
      report.msgs_remote += s.msgs_remote;
      report.bytes_local += s.bytes_local;
      report.bytes_remote += s.bytes_remote;
      if (config_.collect_telemetry) {
        const auto rank = static_cast<std::int32_t>(r);
        collector_.record_phase(step, rank, Phase::kCompute, s.compute_ns);
        collector_.record_phase(step, rank, Phase::kComm, s.comm_ns());
        collector_.record_phase(step, rank, Phase::kSync, s.sync_ns);
        collector_.record_comm(step, rank, s.msgs_local, s.msgs_remote,
                               s.bytes_local, s.bytes_remote,
                               s.send_wait_ns, s.recv_wait_ns);
      }
      if (config_.collect_block_telemetry) {
        for (std::size_t b = 0; b < mesh.size(); ++b)
          if (placement[b] == static_cast<std::int32_t>(r))
            collector_.record_block(step, static_cast<std::int32_t>(b),
                                    placement[b], costs[b]);
      }
    }
  }

  pipeline_stats_.plan_hits = plan_cache.stats().hits;
  pipeline_stats_.plan_misses = plan_cache.stats().misses;

  report.steps = config_.steps;
  report.final_blocks = mesh.size();
  report.wall_seconds = to_sec(engine.now());
  report.critical_path = critical_path.stats();
  return report;
}

}  // namespace amr
