#include "amr/sim/simulation.hpp"

#include <algorithm>
#include <chrono>

#include "amr/common/check.hpp"
#include "amr/common/log.hpp"
#include "amr/common/stats.hpp"
#include "amr/exec/step_executor.hpp"
#include "amr/placement/baseline.hpp"
#include "amr/placement/metrics.hpp"

namespace amr {
namespace {

/// Real (host) wall-clock of a placement computation, in milliseconds —
/// the quantity the paper's 50 ms budget constrains.
template <typename Fn>
double timed_ms(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

Simulation::Simulation(SimulationConfig config, Workload& workload,
                       const PlacementPolicy& policy)
    : config_(std::move(config)), workload_(workload), policy_(policy) {
  collector_.set_block_records(config_.collect_block_telemetry);
  if (config_.trace_enabled) {
    TraceConfig tc = config_.trace;
    tc.ranks_per_node = config_.ranks_per_node;
    tracer_ = std::make_unique<Tracer>(tc);
  }
}

std::vector<TimeNs> Simulation::estimated_costs(const AmrMesh& mesh) const {
  std::vector<TimeNs> costs(mesh.size());
  if (!config_.telemetry_driven_costs || measured_costs_.empty()) {
    // Framework default: every block costs 1 (paper §V-A3).
    std::fill(costs.begin(), costs.end(), TimeNs{1});
    return costs;
  }
  // Median of measured costs as the fallback for never-seen blocks.
  std::vector<TimeNs> all;
  all.reserve(measured_costs_.size());
  for (const auto& [key, cost] : measured_costs_) all.push_back(cost);
  std::nth_element(all.begin(), all.begin() + all.size() / 2, all.end());
  const TimeNs fallback = all[all.size() / 2];

  for (std::size_t b = 0; b < mesh.size(); ++b) {
    const BlockCoord& c = mesh.block(b);
    // Exact match, else inherit from the parent (fresh refinement), else
    // from any child (fresh coarsening), else the fallback.
    if (const auto it = measured_costs_.find(block_key(c));
        it != measured_costs_.end()) {
      costs[b] = it->second;
      continue;
    }
    if (c.level > 0) {
      if (const auto it = measured_costs_.find(block_key(c.parent()));
          it != measured_costs_.end()) {
        costs[b] = it->second;
        continue;
      }
    }
    TimeNs child_sum = 0;
    int child_count = 0;
    for (std::uint32_t ch = 0; ch < 8; ++ch) {
      const auto it = measured_costs_.find(block_key(
          c.child(ch & 1u, (ch >> 1) & 1u, (ch >> 2) & 1u)));
      if (it != measured_costs_.end()) {
        child_sum += it->second;
        ++child_count;
      }
    }
    costs[b] = child_count > 0 ? child_sum / child_count : fallback;
  }
  return costs;
}

void Simulation::remember_costs(const AmrMesh& mesh,
                                std::span<const TimeNs> measured) {
  for (std::size_t b = 0; b < mesh.size(); ++b)
    measured_costs_[block_key(mesh.block(b))] = measured[b];
}

RunReport Simulation::run() {
  const ClusterTopology topo(config_.nranks, config_.ranks_per_node);
  Engine engine;
  Rng rng(config_.seed);
  Fabric fabric(topo, config_.fabric, rng.split(0xfab));
  Comm comm(engine, fabric, config_.nranks, config_.collective);
  Tracer* const tracer = tracer_.get();
  engine.set_tracer(tracer);
  fabric.set_tracer(tracer);
  comm.set_tracer(tracer);
  // Exactly one executor registers rank endpoints on the comm.
  std::unique_ptr<StepExecutor> bsp_executor;
  std::unique_ptr<OverlapExecutor> overlap_executor;
  if (config_.execution == ExecutionMode::kBsp)
    bsp_executor = std::make_unique<StepExecutor>(engine, comm,
                                                  config_.exec, tracer);
  else
    overlap_executor = std::make_unique<OverlapExecutor>(
        engine, comm, config_.exec, tracer);
  CriticalPathAnalyzer critical_path;
  std::vector<ActiveFault> prev_faults;

  AmrMesh mesh(config_.root_grid);
  RunReport report;
  report.policy = policy_.name();
  report.initial_blocks = mesh.size();
  report.rank_compute_seconds.assign(
      static_cast<std::size_t>(config_.nranks), 0.0);

  // Initial placement: no telemetry exists yet, costs default to uniform.
  Placement placement;
  {
    const std::vector<double> uniform(mesh.size(), 1.0);
    placement = policy_.place(uniform, config_.nranks);
  }
  // Placements are tracked by block coordinates so migrations can be
  // counted across renumbering.
  std::unordered_map<std::uint64_t, std::int32_t> rank_by_key;
  for (std::size_t b = 0; b < mesh.size(); ++b)
    rank_by_key[block_key(mesh.block(b))] = placement[b];

  double last_imbalance = 1.0;  // measured max/mean compute of last step

  for (std::int64_t step = 0; step < config_.steps; ++step) {
    // -- Mesh evolution + redistribution ------------------------------
    const bool changed = workload_.evolve(mesh, step);
    if (changed || placement.size() != mesh.size() ||
        config_.trigger.fire(false, step, last_imbalance)) {
      ++report.lb_invocations;
      const auto est = estimated_costs(mesh);
      std::vector<double> est_d(est.size());
      for (std::size_t i = 0; i < est.size(); ++i)
        est_d[i] = static_cast<double>(est[i]);

      Placement next;
      report.placement_ms.push_back(timed_ms(
          [&] { next = policy_.place(est_d, config_.nranks); }));
      AMR_CHECK(placement_valid(next, mesh.size(), config_.nranks));
      if (report.placement_ms.back() > config_.placement_budget_ms) {
        ++report.budget_violations;
        if (config_.enforce_placement_budget) {
          // Over budget: fall back to the always-cheap baseline split
          // for this invocation (the paper's hard 50 ms constraint).
          next = BaselinePolicy().place(est_d, config_.nranks);
        }
      }

      // Migration: blocks whose rank changed move their payload; charge
      // the slowest rank's transfer plus the placement-computation
      // budget as the rebalance wall for this invocation.
      std::vector<std::int64_t> migrate_bytes(
          static_cast<std::size_t>(config_.nranks), 0);
      std::int64_t moved = 0;
      for (std::size_t b = 0; b < mesh.size(); ++b) {
        const auto it = rank_by_key.find(block_key(mesh.block(b)));
        const std::int32_t old_rank =
            it != rank_by_key.end() ? it->second : -1;
        if (old_rank >= 0 && old_rank != next[b]) {
          ++moved;
          migrate_bytes[static_cast<std::size_t>(old_rank)] +=
              config_.migrated_block_bytes;
          migrate_bytes[static_cast<std::size_t>(next[b])] +=
              config_.migrated_block_bytes;
        }
      }
      report.blocks_migrated += moved;
      const std::int64_t max_bytes =
          *std::max_element(migrate_bytes.begin(), migrate_bytes.end());
      const TimeNs migration =
          static_cast<TimeNs>(static_cast<double>(max_bytes) /
                              config_.migration_gbytes_per_sec);
      const TimeNs rebalance_wall = migration + config_.placement_charge;
      if (tracer != nullptr)
        tracer->complete(Tracer::kTrackSim, TraceCat::kRebalance,
                         "rebalance", engine.now(), rebalance_wall, moved,
                         step);
      engine.run_until(engine.now() + rebalance_wall);

      const double rebalance_s = to_sec(rebalance_wall);
      report.phases.rebalance += rebalance_s;
      if (config_.collect_telemetry) {
        for (std::int32_t r = 0; r < config_.nranks; ++r)
          collector_.record_phase(step, r, Phase::kRebalance,
                                  rebalance_wall);
      }

      placement = std::move(next);
      rank_by_key.clear();
      for (std::size_t b = 0; b < mesh.size(); ++b)
        rank_by_key[block_key(mesh.block(b))] = placement[b];
    }

    // -- Fault transitions (trace instants at onset/clear edges) -------
    if (tracer != nullptr && !config_.faults.empty()) {
      const auto active = config_.faults.active_at(step);
      for (const ActiveFault& f : active) {
        const bool was_active = std::any_of(
            prev_faults.begin(), prev_faults.end(),
            [&](const ActiveFault& p) { return p.node == f.node; });
        if (!was_active)
          tracer->instant(Tracer::kTrackSim, TraceCat::kFault,
                          "fault-onset", engine.now(), f.node,
                          static_cast<std::int64_t>(f.factor * 100.0));
      }
      for (const ActiveFault& p : prev_faults) {
        const bool still_active = std::any_of(
            active.begin(), active.end(),
            [&](const ActiveFault& f) { return f.node == p.node; });
        if (!still_active)
          tracer->instant(Tracer::kTrackSim, TraceCat::kFault,
                          "fault-clear", engine.now(), p.node,
                          static_cast<std::int64_t>(p.factor * 100.0));
      }
      prev_faults = active;
    }

    // -- True per-block compute costs (workload x hardware faults) ----
    std::vector<TimeNs> costs(mesh.size());
    for (std::size_t b = 0; b < mesh.size(); ++b) {
      const double factor = config_.faults.compute_multiplier(
          topo.node_of(placement[b]), step);
      costs[b] = static_cast<TimeNs>(
          static_cast<double>(workload_.block_cost(mesh, b, step)) *
          factor);
    }

    // -- Execute the step ----------------------------------------------
    StepResult result;
    std::int64_t intra_rank_msgs = 0;
    if (config_.execution == ExecutionMode::kBsp) {
      const auto work = build_step_work(
          mesh, placement, costs, config_.nranks, config_.msg_sizes,
          config_.include_flux_correction);
      result = bsp_executor->execute(work, config_.ordering,
                                     static_cast<std::uint64_t>(step));
      for (const auto& w : work) intra_rank_msgs += w.local_copy_msgs;
    } else {
      const auto work = build_overlap_work(
          mesh, placement, costs, config_.nranks, config_.msg_sizes);
      result = overlap_executor->execute(
          work, static_cast<std::uint64_t>(step));
      for (const auto& w : work) intra_rank_msgs += w.local_copy_msgs;
    }
    report.msgs_intra_rank += intra_rank_msgs;
    const WindowPath path = critical_path.observe(result);

    // -- Critical-path overlay (paper §IV-D) ---------------------------
    // A dedicated track carries one span per window naming the modeled
    // critical path; the straggler's own track gets an instant so the
    // path is visible in rank context too.
    if (tracer != nullptr && path.straggler >= 0) {
      const RankStepStats& straggler_stats =
          result.ranks[static_cast<std::size_t>(path.straggler)];
      tracer->complete(
          Tracer::kTrackCrit, TraceCat::kCritPath,
          path.two_rank ? "crit:2-rank" : "crit:1-rank",
          result.step_start,
          straggler_stats.collective_entry - result.step_start,
          path.straggler, path.release_src);
      tracer->instant(path.straggler, TraceCat::kCritPath,
                      "on-critical-path", straggler_stats.collective_entry,
                      step, path.release_src);
    }

    // Measured compute imbalance feeds the optional rebalance trigger.
    {
      RunningStats s;
      for (const auto& r : result.ranks)
        s.add(static_cast<double>(r.compute_ns));
      last_imbalance = s.mean() > 0.0 ? s.max() / s.mean() : 1.0;
    }

    // -- Telemetry ------------------------------------------------------
    // Measured cost = what the profiler sees: the fault-inflated kernel
    // time. Placement models are built from this, which is precisely why
    // fail-slow hardware must be pruned rather than "balanced around".
    remember_costs(mesh, costs);

    const double inv_ranks = 1.0 / static_cast<double>(config_.nranks);
    for (std::size_t r = 0; r < result.ranks.size(); ++r) {
      const RankStepStats& s = result.ranks[r];
      report.phases.compute += to_sec(s.compute_ns) * inv_ranks;
      report.phases.comm += to_sec(s.comm_ns()) * inv_ranks;
      report.phases.sync += to_sec(s.sync_ns) * inv_ranks;
      report.rank_compute_seconds[r] += to_sec(s.compute_ns);
      report.msgs_local += s.msgs_local;
      report.msgs_remote += s.msgs_remote;
      report.bytes_local += s.bytes_local;
      report.bytes_remote += s.bytes_remote;
      if (config_.collect_telemetry) {
        const auto rank = static_cast<std::int32_t>(r);
        collector_.record_phase(step, rank, Phase::kCompute, s.compute_ns);
        collector_.record_phase(step, rank, Phase::kComm, s.comm_ns());
        collector_.record_phase(step, rank, Phase::kSync, s.sync_ns);
        collector_.record_comm(step, rank, s.msgs_local, s.msgs_remote,
                               s.bytes_local, s.bytes_remote,
                               s.send_wait_ns, s.recv_wait_ns);
      }
      if (config_.collect_block_telemetry) {
        for (std::size_t b = 0; b < mesh.size(); ++b)
          if (placement[b] == static_cast<std::int32_t>(r))
            collector_.record_block(step, static_cast<std::int32_t>(b),
                                    placement[b], costs[b]);
      }
    }
  }

  report.steps = config_.steps;
  report.final_blocks = mesh.size();
  report.wall_seconds = to_sec(engine.now());
  report.critical_path = critical_path.stats();
  return report;
}

}  // namespace amr
