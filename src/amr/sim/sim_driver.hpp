// Shared driver for the three simulation frontends (sedov_sim, amrcplx
// run, amrcplx serve): one job spec -> validated config -> owned
// workload/policy/Simulation, plus the canonical report renderings.
//
// Before this existed, each frontend carried its own copy of the
// flag-to-config mapping, the mode-matrix validation, the fault-schedule
// construction, and the report formatter — and the serve determinism
// contract ("a job's bytes are identical standalone or multiplexed")
// is only checkable if all frontends provably produce their text the
// same way. Hoisting them here means the frontends cannot drift: they
// parse flags into a JobSpec and defer everything else.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "amr/placement/registry.hpp"
#include "amr/sim/simulation.hpp"

namespace amr {

class SharedPlanStore;

/// One simulation job, as a frontend-neutral value: flags from the CLIs
/// and JSON fields from the serve protocol both land here. Defaults
/// mirror `amrcplx run`.
struct JobSpec {
  std::string id;  ///< serve job identifier (CLIs leave it empty)
  std::string workload = "sedov";  ///< sedov | cooling
  std::string policy = "cpl50";
  std::int64_t ranks = 64;
  std::int64_t steps = 40;
  bool overlap = false;  ///< overlap execution instead of BSP
  bool aggregate = false;
  bool comm_adaptive = false;
  std::int64_t pack_threshold = -1;  ///< requires comm_adaptive; -1 modeled
  bool send_priority = false;
  std::int32_t des_shards = 0;  ///< BSP only; 0 = sequential engine
  bool incremental_plans = true;
  /// Self-tuning CPLX: the auto-X tuner picks X per regrid epoch.
  bool auto_cplx = false;
  /// Auto-X evaluation budget in ms (requires auto_cplx when >= 0);
  /// -1 keeps the simulation default (the paper's 50 ms).
  std::int64_t cplx_budget_ms = -1;
  /// Incremental parallel placement engine for CPLX policies.
  bool placement_incremental = false;
  bool collect_telemetry = true;
  /// Sedov refinement depth override; 0 keeps the workload default.
  std::int32_t sedov_max_level = 0;
  std::int64_t checkpoint_every = 0;
  std::string checkpoint_dir = ".";
  std::string restore;  ///< resume from snapshot
  std::string replay;   ///< re-drive snapshot (what-if)
  /// Throttle this many nodes x4 for the middle half of the run,
  /// victims drawn deterministically from the seed.
  std::int32_t fault_nodes = 0;
  bool trace = false;
  std::size_t trace_capacity = 0;  ///< 0 = TraceConfig default
};

/// Mode-matrix validation, hoisted so every frontend rejects the same
/// contradictions with the same words. Returns "" when the spec is
/// coherent, else the failure message (no program-name prefix — the
/// frontend adds its own).
std::string validate_job(const JobSpec& spec);

/// Paper Table I mesh sizes: 512 -> 128^3 cells = 8^3 root blocks of
/// 16^3 cells, 1024 -> 8x8x16, 2048 -> 8x16x16, 4096 -> 16^3;
/// other powers of two continue the doubling pattern.
RootGrid grid_for_ranks(std::int64_t ranks);

/// Canonical run configuration shared by the figure benches and the
/// CLIs: the paper cluster shape (16 ranks/node), the Table I root grid
/// for `ranks`, and per-(step,rank) telemetry off (harnesses that want
/// the collector turn it back on).
SimulationConfig base_sim_config(std::int64_t ranks, std::int64_t steps);

/// Full SimulationConfig for a validated spec, including the fault
/// schedule. Does not set shared_plans (the serve scheduler wires that
/// per tenant).
SimulationConfig job_config(const JobSpec& spec);

/// The deterministic fail-slow schedule shared by sedov_sim --faults,
/// amrcplx run --faults, and serve fault-scenario jobs: throttle
/// `fault_nodes` nodes x4 for the middle half of the run, victims
/// picked from the config seed. A restore inside, at, or after the
/// fault window must reproduce both edges.
void add_fault_schedule(SimulationConfig& cfg, std::int32_t fault_nodes,
                        std::int64_t steps);

/// Workload factory for the spec (nullptr + caller-rendered error for an
/// unknown name).
std::unique_ptr<Workload> make_job_workload(const JobSpec& spec);

/// The `amrcplx run` report rendering (compact). Byte-for-byte the text
/// the serve scheduler emits per job — that identity is what the
/// serve_determinism harness diffs.
std::string compact_report_text(const RunReport& r, bool show_packing);

/// The sedov_sim report rendering (verbose, optional host-measured
/// placement timing).
std::string verbose_report_text(const RunReport& r, bool timing,
                                bool show_packing);

/// One job end to end: owns config, workload, policy, and Simulation in
/// construction order so teardown is safe. Construction performs the
/// restore/replay if the spec names a snapshot.
class SimDriver {
 public:
  /// Throws std::runtime_error on an incoherent spec, unknown
  /// workload/policy, or a snapshot that fails to restore.
  explicit SimDriver(const JobSpec& spec,
                     SharedPlanStore* shared_plans = nullptr);
  ~SimDriver();

  SimDriver(const SimDriver&) = delete;
  SimDriver& operator=(const SimDriver&) = delete;

  const JobSpec& spec() const { return spec_; }
  const SimulationConfig& config() const { return config_; }
  const PlacementPolicy& policy() const { return *policy_; }
  Simulation& sim() { return *sim_; }

  /// Non-empty iff the spec restored/replayed a snapshot: the stderr
  /// diagnostic line ("restored <path> at step N (policy=...)"),
  /// without trailing newline. Frontends print it to stderr so job
  /// stdout stays byte-identical to an uninterrupted run.
  const std::string& restore_note() const { return restore_note_; }

  /// Run to the step horizon (the classic blocking loop). The serve
  /// scheduler uses sim().begin()/advance()/finish() instead.
  RunReport run() { return sim_->run(); }

 private:
  JobSpec spec_;
  SimulationConfig config_;
  std::unique_ptr<Workload> workload_;
  PolicyPtr policy_;
  std::unique_ptr<Simulation> sim_;
  std::string restore_note_;
};

}  // namespace amr
