#include "amr/sim/exchange_bench.hpp"

#include "amr/common/check.hpp"
#include "amr/common/stats.hpp"
#include "amr/des/engine.hpp"
#include "amr/exec/step_executor.hpp"
#include "amr/topo/topology.hpp"

namespace amr {

ExchangeRoundsResult run_exchange_rounds(
    const AmrMesh& mesh, const Placement& placement,
    const ExchangeRoundsConfig& config) {
  AMR_CHECK(placement.size() == mesh.size());
  const ClusterTopology topo(config.nranks, config.ranks_per_node);
  Engine engine;
  Rng rng(config.seed);
  Fabric fabric(topo, config.fabric, rng.split(0xfab));
  Comm comm(engine, fabric, config.nranks, config.collective);
  StepExecutor executor(engine, comm, config.exec);

  ExchangeRoundsResult result;
  std::vector<RunningStats> rank_comm(
      static_cast<std::size_t>(config.nranks));

  // Base work: the exchange pattern is fixed; compute costs (if any) vary
  // per round via the callback.
  std::vector<TimeNs> costs(mesh.size(), 0);
  Rng cost_rng = rng.split(0xc05);

  const std::int32_t total_rounds = config.rounds + config.warmup_rounds;
  for (std::int32_t round = 0; round < total_rounds; ++round) {
    if (config.compute_cost) {
      for (std::size_t b = 0; b < mesh.size(); ++b)
        costs[b] = config.compute_cost(b, round, cost_rng);
    }
    const auto work = build_step_work(mesh, placement, costs,
                                      config.nranks, config.msg_sizes);
    const StepResult step = executor.execute(
        work, config.ordering, static_cast<std::uint64_t>(round));

    if (round < config.warmup_rounds) continue;
    const double latency_ms = to_ms(step.wall_ns());
    if (step.wall_ns() > config.outlier_cutoff) {
      // Fabric-level recovery behaviour unrelated to placement (§VI-C).
      ++result.rounds_discarded;
      continue;
    }
    result.round_latency_ms.push_back(latency_ms);
    std::vector<double> round_samples(step.ranks.size());
    std::vector<double> active_samples(step.ranks.size());
    for (std::size_t r = 0; r < step.ranks.size(); ++r) {
      const double comm_ms = to_ms(step.ranks[r].comm_ns());
      rank_comm[r].add(comm_ms);
      round_samples[r] = comm_ms;
      active_samples[r] =
          to_ms(step.ranks[r].pack_ns + step.ranks[r].send_wait_ns);
    }
    result.round_rank_comm_ms.push_back(std::move(round_samples));
    result.round_rank_active_ms.push_back(std::move(active_samples));
  }

  result.rank_comm_ms.reserve(rank_comm.size());
  result.rank_comm_cv.reserve(rank_comm.size());
  for (const auto& s : rank_comm) {
    result.rank_comm_ms.push_back(s.mean());
    result.rank_comm_cv.push_back(s.cv());
  }
  result.fabric_stats = fabric.stats();
  return result;
}

}  // namespace amr
