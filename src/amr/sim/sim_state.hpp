// Explicit simulation state: the SimState/SimRuntime split behind the
// resumable run loop (DESIGN.md "State model & snapshot format").
//
// SimState is every piece of information that crosses a step boundary —
// the mesh and its renumbering history, the current placement and the
// version pair keying the plan cache, carried telemetry costs, the
// accumulating RunReport, fault edges, pipeline counters. SimRuntime is
// the machinery that is *reconstructed*, not restored: topology, DES
// engine, fabric, comm, executors, plan cache, and the per-step scratch
// buffers. A checkpoint serializes SimState plus the small dynamic parts
// of the runtime that cannot be recomputed (DES clock, RNG streams,
// fabric NIC/queue occupancy) — everything else is rebuilt
// deterministically from the config.
//
// Snapshots are taken only at step boundaries, where the event queue is
// drained (executors run each window to completion), so the DES engine
// reduces to its clock and no pending event — which holds a raw handler
// pointer — ever needs to be serialized.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "amr/des/engine.hpp"
#include "amr/des/sharded_engine.hpp"
#include "amr/exec/plan_cache.hpp"
#include "amr/exec/step_executor.hpp"
#include "amr/par/thread_pool.hpp"
#include "amr/placement/tuner.hpp"
#include "amr/sim/simulation.hpp"

namespace amr {

/// Cross-step simulation state. Everything here (plus the runtime's
/// clock/RNG/fabric dynamics) is what a snapshot captures.
struct SimState {
  explicit SimState(const SimulationConfig& config)
      : mesh(config.root_grid), placement_mesh_version(mesh.version()) {}

  std::int64_t step = 0;
  AmrMesh mesh;
  Placement placement;
  /// (mesh.version(), placement_version) keys the exchange-plan cache;
  /// placement_mesh_version remembers which numbering the current
  /// placement refers to, for migration accounting across regrids.
  std::uint64_t placement_version = 0;
  std::uint64_t placement_mesh_version = 0;
  bool have_plan_key = false;
  std::uint64_t last_plan_mesh = 0;
  std::uint64_t last_plan_placement = 0;
  double last_imbalance = 1.0;  ///< measured max/mean compute of last step
  /// Straggler rank of the last executed window (-1 before the first
  /// step): the predicted critical-path successor that send_priority
  /// schedules toward. Serialized so restored runs prioritize
  /// identically.
  std::int32_t last_straggler = -1;
  std::vector<ActiveFault> prev_faults;  ///< for fault-edge trace instants

  // Measured per-block costs in block-ID order at mesh version
  // measured_version, carried across renumberings (simulation.cpp sync).
  std::vector<TimeNs> measured_flat;
  std::uint64_t measured_version = 0;
  bool measured_valid = false;

  /// Auto-X tuner state plus the simulated-time accumulators feeding it
  /// (executed-window wall of the current placement epoch). Serialized
  /// in the snapshot's "tuner" section (format v5) so a restored run
  /// makes byte-identical tuning decisions. Untouched unless auto_cplx.
  TunerState tuner;
  std::int64_t epoch_steps = 0;
  TimeNs epoch_wall_ns = 0;

  StepPipelineStats pipeline_stats;
  /// Plan-cache hit/miss counts accumulated before the last restore; the
  /// live cache counts only since then (it is rebuilt, which costs one
  /// extra miss per restore — diagnostics only, never printed).
  std::int64_t plan_hits_base = 0;
  std::int64_t plan_misses_base = 0;

  RunReport report;
};

/// Run-scoped machinery, heap-allocated for address stability (the
/// fabric references the topology; comm references engine and fabric).
/// Reconstructed from the config on restore, then patched with the
/// snapshot's clock/RNG/fabric dynamics.
struct SimRuntime {
  SimRuntime(const SimulationConfig& config, Tracer* tracer);

  ClusterTopology topo;
  Engine engine;
  Rng rng;  ///< root stream (already split for the fabric)
  Fabric fabric;
  /// Sharded-DES mode only (config.des_shards > 0, both null otherwise):
  /// the worker pool and the per-node shard partition. Declared before
  /// comm, which captures sharded.get() at construction.
  std::unique_ptr<ThreadPool> des_pool;
  std::unique_ptr<ShardedEngine> sharded;
  Comm comm;
  // Exactly one executor registers rank endpoints on the comm.
  std::unique_ptr<StepExecutor> bsp_executor;
  std::unique_ptr<OverlapExecutor> overlap_executor;
  CriticalPathAnalyzer critical_path;
  ExchangePlanCache plan_cache;

  /// Placement-engine mode (auto_cplx || placement_incremental, both
  /// null/inert otherwise). The engine gets its OWN pool: sweeps run
  /// whole Simulations inside worker tasks, and ThreadPool::parallel_for
  /// is not reentrant, so borrowing an outer pool would deadlock.
  std::unique_ptr<ThreadPool> placement_pool;
  PlacementEngine placement_engine;
  std::unique_ptr<AutoXTuner> auto_tuner;  ///< auto_cplx only
  // Auto-X per-epoch scratch, reused across all epochs.
  std::vector<CandidateEval> cand_evals;
  std::vector<std::int32_t> cand_indices;
  std::vector<double> cand_xs;

  // Step-loop scratch, reused across all steps.
  std::vector<TimeNs> est;
  std::vector<double> est_d;
  std::vector<std::int32_t> prev_rank;
  std::vector<std::int64_t> migrate_bytes;
  std::vector<TimeNs> costs;
  std::vector<RankStepWork> fresh_bsp;
  std::vector<OverlapRankWork> fresh_overlap;
  std::vector<TimeNs> cost_scratch;
  std::vector<std::int32_t> rank_scratch_a;
  std::vector<std::int32_t> rank_scratch_b;
};

/// Serialize the full simulation to `path`. The tracer may be null.
/// Returns false on file I/O failure.
bool save_snapshot(const std::string& path, const SimulationConfig& config,
                   const SimState& state, const SimRuntime& runtime,
                   const Workload& workload, const Collector& collector,
                   const Tracer* tracer);

/// Restore a snapshot into freshly begun state/runtime. Throws
/// io::SnapshotError if the file is malformed or its config fingerprint
/// (cluster shape, seed, modes, workload, fault schedule) does not match
/// `config`. The policy and the step horizon are deliberately NOT part of
/// the fingerprint: replay swaps the policy, and a restored run may
/// continue to a different step count.
void restore_snapshot(const std::string& path,
                      const SimulationConfig& config, SimState& state,
                      SimRuntime& runtime, Workload& workload,
                      Collector& collector, Tracer* tracer);

}  // namespace amr
