// Rebalance trigger policies (paper §II-B "Redistribution", related work
// Meta-Balancer [60]).
//
// Redistribution is mandatory when the mesh changes (block IDs shift),
// but a run may also rebalance on a *stale but drifting* cost profile
// without any refinement. Triggers decide when that is worth the
// migration cost:
//   kOnMeshChange — the production default: only when refinement or
//                   coarsening occurred.
//   kPeriodic     — additionally every `period` steps.
//   kImbalance    — additionally when measured imbalance (max/mean rank
//                   load of the previous step) exceeds a threshold.
#pragma once

#include <cstdint>

#include "amr/common/check.hpp"

namespace amr {

enum class RebalanceTriggerKind : std::uint8_t {
  kOnMeshChange = 0,
  kPeriodic = 1,
  kImbalance = 2,
};

constexpr const char* to_string(RebalanceTriggerKind k) {
  switch (k) {
    case RebalanceTriggerKind::kOnMeshChange: return "on-mesh-change";
    case RebalanceTriggerKind::kPeriodic: return "periodic";
    case RebalanceTriggerKind::kImbalance: return "imbalance";
  }
  return "?";
}

struct RebalanceTrigger {
  RebalanceTriggerKind kind = RebalanceTriggerKind::kOnMeshChange;
  std::int64_t period = 10;        ///< for kPeriodic
  double imbalance_threshold = 1.25;  ///< for kImbalance (max/mean)

  /// Should this step redistribute? `mesh_changed` forces true (IDs are
  /// stale otherwise); the rest depends on the trigger kind.
  bool fire(bool mesh_changed, std::int64_t step,
            double measured_imbalance) const {
    if (mesh_changed) return true;
    switch (kind) {
      case RebalanceTriggerKind::kOnMeshChange:
        return false;
      case RebalanceTriggerKind::kPeriodic:
        AMR_CHECK(period > 0);
        return step > 0 && step % period == 0;
      case RebalanceTriggerKind::kImbalance:
        return measured_imbalance > imbalance_threshold;
    }
    return false;
  }
};

}  // namespace amr
