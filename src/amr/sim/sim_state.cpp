#include "amr/sim/sim_state.hpp"

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "amr/common/stats.hpp"
#include "amr/io/snapshot.hpp"

namespace amr {

namespace {

/// Sharded-mode construction detour: flip the fabric to per-node state
/// (before the comm captures it) and build the shard partition + worker
/// pool. Runs inside SimRuntime's init list so `sharded.get()` is valid
/// by the time the comm member constructs.
std::unique_ptr<ShardedEngine> make_sharded(
    const SimulationConfig& config, const ClusterTopology& topo,
    Fabric& fabric, std::unique_ptr<ThreadPool>& pool) {
  if (config.des_shards <= 0) return nullptr;
  fabric.enable_sharding();
  const std::int32_t shards =
      std::min(config.des_shards, topo.num_nodes());
  if (shards > 1)
    pool = std::make_unique<ThreadPool>(
        std::min(shards, ThreadPool::hardware_jobs()));
  return std::make_unique<ShardedEngine>(topo, config.des_shards,
                                         config.fabric.remote_latency,
                                         pool.get());
}

}  // namespace

SimRuntime::SimRuntime(const SimulationConfig& config, Tracer* tracer)
    : topo(config.nranks, config.ranks_per_node),
      rng(config.seed),
      fabric(topo, config.fabric, rng.split(0xfab)),
      sharded(make_sharded(config, topo, fabric, des_pool)),
      comm(engine, fabric, config.nranks, config.collective,
           sharded.get()) {
  if (sharded) {
    // Concurrent shards cannot funnel into the shared trace ring; the
    // driver rejects trace_enabled + des_shards before getting here.
    AMR_CHECK(tracer == nullptr);
    sharded->set_barrier_callback([this] { comm.on_epoch_barrier(); });
  } else {
    engine.set_tracer(tracer);
    fabric.set_tracer(tracer);
    comm.set_tracer(tracer);
  }
  if (config.execution == ExecutionMode::kBsp)
    bsp_executor =
        std::make_unique<StepExecutor>(engine, comm, config.exec, tracer);
  else
    overlap_executor =
        std::make_unique<OverlapExecutor>(engine, comm, config.exec, tracer);
  plan_cache.set_shared_store(config.shared_plans);
  if (config.auto_cplx || config.placement_incremental) {
    // Chunk solves and candidate scoring parallelize well up to the
    // candidate count; more workers than that only cost startup.
    placement_pool = std::make_unique<ThreadPool>(
        std::min(ThreadPool::hardware_jobs(), 8));
    placement_engine.set_parallel(placement_pool.get());
  }
  if (config.auto_cplx) {
    TunerConfig tuner_cfg;
    tuner_cfg.budget_ms = config.cplx_budget_ms;
    auto_tuner = std::make_unique<AutoXTuner>(tuner_cfg);
  }
}

namespace {

[[noreturn]] void mismatch(const char* field) {
  throw io::SnapshotError(std::string("snapshot: config mismatch on ") +
                          field +
                          " (restore requires the run configuration that "
                          "produced the checkpoint)");
}

void require(bool ok, const char* field) {
  if (!ok) mismatch(field);
}

void write_rng(io::SnapshotWriter& w, const Rng::State& s) {
  for (const std::uint64_t word : s.s) w.u64(word);
  w.f64(s.cached_normal);
  w.b(s.has_cached_normal);
}

Rng::State read_rng(io::SnapshotReader& r) {
  Rng::State s;
  for (std::uint64_t& word : s.s) word = r.u64();
  s.cached_normal = r.f64();
  s.has_cached_normal = r.b();
  return s;
}

void write_stats(io::SnapshotWriter& w, const RunningStats& s) {
  const RunningStats::Moments m = s.moments();
  w.u64(m.n);
  w.f64(m.mean);
  w.f64(m.m2);
  w.f64(m.min);
  w.f64(m.max);
  w.f64(m.sum);
}

RunningStats read_stats(io::SnapshotReader& r) {
  RunningStats::Moments m;
  m.n = static_cast<std::size_t>(r.u64());
  m.mean = r.f64();
  m.m2 = r.f64();
  m.min = r.f64();
  m.max = r.f64();
  m.sum = r.f64();
  return RunningStats::from_moments(m);
}

void write_table(io::SnapshotWriter& w, const Table& t) {
  w.u64(t.num_rows());
  w.u32(static_cast<std::uint32_t>(t.num_cols()));
  for (std::size_t c = 0; c < t.num_cols(); ++c) {
    w.u8(static_cast<std::uint8_t>(t.col_type(c)));
    if (t.col_type(c) == ColType::kI64)
      w.vec_pod(t.i64(c));
    else
      w.vec_pod(t.f64(c));
  }
}

/// Rebuild a table with `like`'s name and schema from serialized columns.
Table read_table(io::SnapshotReader& r, const Table& like) {
  Table t(like.name(), like.schema());
  const std::uint64_t rows = r.u64();
  const std::uint32_t cols = r.u32();
  if (cols != like.schema().size())
    throw io::SnapshotError("snapshot: table '" + like.name() +
                            "' column count does not match the schema");
  std::vector<std::vector<std::int64_t>> icols(cols);
  std::vector<std::vector<double>> fcols(cols);
  for (std::uint32_t c = 0; c < cols; ++c) {
    const auto type = static_cast<ColType>(r.u8());
    if (type != like.schema()[c].type)
      throw io::SnapshotError("snapshot: table '" + like.name() +
                              "' column type does not match the schema");
    const std::size_t got = type == ColType::kI64
                                ? (icols[c] = r.vec_pod<std::int64_t>()).size()
                                : (fcols[c] = r.vec_pod<double>()).size();
    if (got != rows)
      throw io::SnapshotError("snapshot: table '" + like.name() +
                              "' column length does not match the row count");
  }
  t.reserve(static_cast<std::size_t>(rows));
  std::vector<CellValue> cells(cols);
  for (std::uint64_t row = 0; row < rows; ++row) {
    for (std::uint32_t c = 0; c < cols; ++c)
      cells[c] = like.schema()[c].type == ColType::kI64
                     ? CellValue(icols[c][row])
                     : CellValue(fcols[c][row]);
    t.append_row(cells);
  }
  return t;
}

void write_meta(io::SnapshotWriter& w, const SimulationConfig& config,
                const SimState& state, const Workload& workload) {
  w.begin_section("meta");
  w.u32(static_cast<std::uint32_t>(config.nranks));
  w.u32(static_cast<std::uint32_t>(config.ranks_per_node));
  w.u32(config.root_grid.nx);
  w.u32(config.root_grid.ny);
  w.u32(config.root_grid.nz);
  w.u64(config.seed);
  w.u8(static_cast<std::uint8_t>(config.execution));
  w.u8(static_cast<std::uint8_t>(config.ordering));
  w.b(config.include_flux_correction);
  w.b(config.aggregate_messages);
  // Adaptive-comm axes (format v4): packing decisions and send order
  // shape every window, so mismatched restores must be refused.
  w.b(config.comm_adaptive);
  w.b(config.send_priority);
  w.i64(config.comm_pack_threshold);
  // Sharded vs sequential is a fingerprint axis (the two draw different
  // fabric jitter); the shard *count* is deliberately not — any sharded
  // run restores any sharded snapshot (state is node-indexed).
  w.b(config.des_shards > 0);
  w.b(config.telemetry_driven_costs);
  w.b(config.incremental_plans);
  // Placement-engine axes (format v5): both change which placements the
  // run computes, and the tuner budget shapes every auto-X decision.
  w.b(config.auto_cplx);
  w.b(config.placement_incremental);
  w.f64(config.cplx_budget_ms);
  w.b(config.collect_telemetry);
  w.b(config.collect_block_telemetry);
  w.b(config.trace_enabled);
  w.str(workload.name());
  w.str(state.report.policy);  // informational: replay may swap it
  const auto& faults = config.faults.throttles();
  w.u32(static_cast<std::uint32_t>(faults.size()));
  for (const ThrottleFault& f : faults) {
    w.vec_pod(f.nodes);
    w.f64(f.factor);
    w.i64(f.onset_step);
    w.i64(f.end_step);
  }
  w.end_section();
}

/// Verify the snapshot's config fingerprint against the live config.
/// The policy and step horizon are deliberately unchecked (replay swaps
/// the policy; a restored run may continue to a different horizon).
void check_meta(io::SnapshotReader& r, const SimulationConfig& config,
                const Workload& workload) {
  r.begin_section("meta");
  require(r.u32() == static_cast<std::uint32_t>(config.nranks), "nranks");
  require(r.u32() == static_cast<std::uint32_t>(config.ranks_per_node),
          "ranks_per_node");
  require(r.u32() == config.root_grid.nx, "root_grid.nx");
  require(r.u32() == config.root_grid.ny, "root_grid.ny");
  require(r.u32() == config.root_grid.nz, "root_grid.nz");
  require(r.u64() == config.seed, "seed");
  require(r.u8() == static_cast<std::uint8_t>(config.execution),
          "execution mode");
  require(r.u8() == static_cast<std::uint8_t>(config.ordering),
          "task ordering");
  require(r.b() == config.include_flux_correction, "flux correction");
  require(r.b() == config.aggregate_messages, "message aggregation");
  require(r.b() == config.comm_adaptive, "adaptive packing");
  require(r.b() == config.send_priority, "send priority");
  require(r.i64() == config.comm_pack_threshold, "packing threshold");
  require(r.b() == (config.des_shards > 0), "sharded DES");
  require(r.b() == config.telemetry_driven_costs, "telemetry-driven costs");
  require(r.b() == config.incremental_plans, "incremental plans");
  require(r.b() == config.auto_cplx, "auto-X tuning");
  require(r.b() == config.placement_incremental, "incremental placement");
  require(r.f64() == config.cplx_budget_ms, "auto-X budget");
  require(r.b() == config.collect_telemetry, "collect_telemetry");
  require(r.b() == config.collect_block_telemetry,
          "collect_block_telemetry");
  require(r.b() == config.trace_enabled, "trace_enabled");
  require(r.str() == workload.name(), "workload");
  r.str();  // policy: informational only
  const auto& faults = config.faults.throttles();
  require(r.u32() == static_cast<std::uint32_t>(faults.size()),
          "fault schedule size");
  for (const ThrottleFault& f : faults) {
    require(r.vec_pod<std::int32_t>() == f.nodes, "fault nodes");
    require(r.f64() == f.factor, "fault factor");
    require(r.i64() == f.onset_step, "fault onset step");
    require(r.i64() == f.end_step, "fault end step");
  }
  r.end_section();
}

}  // namespace

bool save_snapshot(const std::string& path, const SimulationConfig& config,
                   const SimState& state, const SimRuntime& runtime,
                   const Workload& workload, const Collector& collector,
                   const Tracer* tracer) {
  io::SnapshotWriter w;
  write_meta(w, config, state, workload);

  w.begin_section("state");
  w.i64(state.step);
  w.vec_pod(state.placement);
  w.u64(state.placement_version);
  w.u64(state.placement_mesh_version);
  w.b(state.have_plan_key);
  w.u64(state.last_plan_mesh);
  w.u64(state.last_plan_placement);
  w.f64(state.last_imbalance);
  w.i32(state.last_straggler);
  w.u32(static_cast<std::uint32_t>(state.prev_faults.size()));
  for (const ActiveFault& f : state.prev_faults) {
    w.i32(f.node);
    w.f64(f.factor);
  }
  w.b(state.measured_valid);
  w.u64(state.measured_version);
  w.vec_pod(state.measured_flat);
  w.i64(state.pipeline_stats.predicted_hits);
  w.i64(state.pipeline_stats.predicted_misses);
  w.i64(state.pipeline_stats.telemetry_drops);
  // Effective plan-cache counters at checkpoint time (base + live cache).
  w.i64(state.plan_hits_base + runtime.plan_cache.stats().hits);
  w.i64(state.plan_misses_base + runtime.plan_cache.stats().misses);
  w.end_section();

  // Auto-X tuner state (format v5): everything the next tuning decision
  // depends on, so a restored run decides byte-identically. Written
  // unconditionally (defaults when auto_cplx is off) — the fingerprint
  // axis above already refuses cross-mode restores.
  const TunerState& ts = state.tuner;
  w.begin_section("tuner");
  w.i32(ts.mode);
  w.i32(ts.probe_at);
  w.i32(ts.last_choice);
  w.b(ts.pending);
  w.f64(ts.last_predicted);
  w.f64(ts.last_scale);
  for (const double f : ts.last_feat) w.f64(f);
  w.f64(ts.err_ewma);
  w.b(ts.have_err);
  w.i32(ts.err_samples);
  w.i64(ts.decisions);
  w.i64(ts.fallback_epochs);
  w.i64(ts.model_resets);
  for (const double v : ts.w) w.f64(v);
  for (const double v : ts.P) w.f64(v);
  for (const double v : ts.cand_step_ns) w.f64(v);
  for (const bool h : ts.cand_have) w.b(h);
  for (const double v : ts.resid) w.f64(v);
  for (const std::int64_t v : ts.last_chosen_at) w.i64(v);
  w.i64(state.epoch_steps);
  w.i64(state.epoch_wall_ns);
  w.end_section();

  const RunReport& rep = state.report;
  w.begin_section("report");
  w.str(rep.policy);
  w.f64(rep.phases.compute);
  w.f64(rep.phases.comm);
  w.f64(rep.phases.sync);
  w.f64(rep.phases.rebalance);
  w.i64(rep.lb_invocations);
  w.u64(rep.initial_blocks);
  w.i64(rep.msgs_local);
  w.i64(rep.msgs_remote);
  w.i64(rep.msgs_intra_rank);
  w.i64(rep.bytes_local);
  w.i64(rep.bytes_remote);
  w.i64(rep.msgs_coalesced);
  w.i64(rep.bytes_packed);
  w.i64(rep.blocks_migrated);
  w.i64(rep.budget_violations);
  w.vec_pod(rep.rank_compute_seconds);
  w.vec_pod(rep.placement_ms);
  const CriticalPathStats& cp = runtime.critical_path.stats();
  w.i64(cp.windows);
  w.i64(cp.one_rank_paths);
  w.i64(cp.two_rank_paths);
  write_stats(w, cp.straggler_wait_ms);
  write_stats(w, cp.straggler_compute_ms);
  write_stats(w, cp.window_ms);
  w.end_section();

  w.begin_section("mesh");
  w.u64(state.mesh.version());
  w.vec_pod(state.mesh.blocks());
  const auto remaps = state.mesh.remap_history();
  w.u32(static_cast<std::uint32_t>(remaps.size()));
  for (const MeshRemap& m : remaps) {
    w.u64(m.from_version);
    w.u64(m.to_version);
    w.vec_pod(m.src);
    w.vec_pod(m.kind);
    w.u64(m.carried);
    w.u64(m.old_size);
  }
  w.end_section();

  // Sharded runs save one merged clock (the shards agree at step
  // boundaries), so a snapshot restores under any shard count.
  const Engine::Clock clock =
      runtime.sharded ? runtime.sharded->clock() : runtime.engine.clock();
  w.begin_section("engine");
  w.i64(clock.now);
  w.i64(clock.front_time);
  w.u64(clock.next_seq);
  w.u64(clock.processed);
  w.end_section();

  w.begin_section("rng");
  write_rng(w, runtime.rng.state());
  w.end_section();

  const Fabric::State fab = runtime.fabric.export_state();
  w.begin_section("fabric");
  write_rng(w, fab.rng);
  w.i64(fab.stats.remote_msgs);
  w.i64(fab.stats.shm_msgs);
  w.i64(fab.stats.remote_bytes);
  w.i64(fab.stats.shm_bytes);
  w.i64(fab.stats.shm_retries);
  w.i64(fab.stats.acks_lost);
  w.i64(fab.stats.ack_block_time);
  w.i64(fab.stats.packed_transfers);
  w.i64(fab.stats.coalesced_msgs);
  w.vec_pod(fab.nic_busy_until);
  w.u32(static_cast<std::uint32_t>(fab.shm_slot_free.size()));
  for (const auto& slots : fab.shm_slot_free) w.vec_pod(slots);
  // Sharded mode: per-node stream positions and counters (node-indexed,
  // so they restore across shard counts). Presence is pinned by the
  // fingerprint's "sharded DES" bit.
  if (runtime.fabric.sharded()) {
    w.u32(static_cast<std::uint32_t>(fab.node_rngs.size()));
    for (const Rng::State& s : fab.node_rngs) write_rng(w, s);
    for (const FabricStats& s : fab.node_stats) {
      w.i64(s.remote_msgs);
      w.i64(s.shm_msgs);
      w.i64(s.remote_bytes);
      w.i64(s.shm_bytes);
      w.i64(s.shm_retries);
      w.i64(s.acks_lost);
      w.i64(s.ack_block_time);
      w.i64(s.packed_transfers);
      w.i64(s.coalesced_msgs);
    }
  }
  w.end_section();

  std::vector<std::uint8_t> blob;
  workload.save_state(blob);
  w.begin_section("workload");
  w.vec_pod(blob);
  w.end_section();

  w.begin_section("collector");
  w.b(collector.block_records());
  write_table(w, collector.phases());
  write_table(w, collector.comm());
  write_table(w, collector.blocks());
  write_table(w, collector.shards());
  write_table(w, collector.placement());
  w.end_section();

  w.begin_section("tracer");
  w.b(tracer != nullptr);
  if (tracer != nullptr) {
    w.u64(tracer->dropped());
    w.u64(tracer->recorded());
    w.u64(tracer->next_flow_id());
    w.u32(static_cast<std::uint32_t>(tracer->size()));
    tracer->for_each([&](const TraceEvent& ev) {
      w.i64(ev.ts);
      w.i64(ev.dur);
      w.u64(ev.id);
      w.i64(ev.a);
      w.i64(ev.b);
      w.str(ev.name);
      w.i32(ev.track);
      w.u8(static_cast<std::uint8_t>(ev.type));
      w.u8(static_cast<std::uint8_t>(ev.cat));
    });
  }
  w.end_section();

  return w.write_file(path);
}

void restore_snapshot(const std::string& path,
                      const SimulationConfig& config, SimState& state,
                      SimRuntime& runtime, Workload& workload,
                      Collector& collector, Tracer* tracer) {
  io::SnapshotReader r(path);
  check_meta(r, config, workload);

  r.begin_section("state");
  state.step = r.i64();
  state.placement = r.vec_pod<std::int32_t>();
  state.placement_version = r.u64();
  state.placement_mesh_version = r.u64();
  state.have_plan_key = r.b();
  state.last_plan_mesh = r.u64();
  state.last_plan_placement = r.u64();
  state.last_imbalance = r.f64();
  state.last_straggler = r.i32();
  state.prev_faults.resize(r.u32());
  for (ActiveFault& f : state.prev_faults) {
    f.node = r.i32();
    f.factor = r.f64();
  }
  state.measured_valid = r.b();
  state.measured_version = r.u64();
  state.measured_flat = r.vec_pod<TimeNs>();
  state.pipeline_stats = {};
  state.pipeline_stats.predicted_hits = r.i64();
  state.pipeline_stats.predicted_misses = r.i64();
  state.pipeline_stats.telemetry_drops = r.i64();
  // The rebuilt cache restarts at zero; the saved effective counters
  // become the base (costs one extra recorded miss vs. uninterrupted —
  // diagnostics only, never part of the printed output).
  state.plan_hits_base = r.i64();
  state.plan_misses_base = r.i64();
  r.end_section();

  TunerState& ts = state.tuner;
  r.begin_section("tuner");
  ts.mode = r.i32();
  ts.probe_at = r.i32();
  ts.last_choice = r.i32();
  ts.pending = r.b();
  ts.last_predicted = r.f64();
  ts.last_scale = r.f64();
  for (double& f : ts.last_feat) f = r.f64();
  ts.err_ewma = r.f64();
  ts.have_err = r.b();
  ts.err_samples = r.i32();
  ts.decisions = r.i64();
  ts.fallback_epochs = r.i64();
  ts.model_resets = r.i64();
  for (double& v : ts.w) v = r.f64();
  for (double& v : ts.P) v = r.f64();
  for (double& v : ts.cand_step_ns) v = r.f64();
  for (bool& h : ts.cand_have) h = r.b();
  for (double& v : ts.resid) v = r.f64();
  for (std::int64_t& v : ts.last_chosen_at) v = r.i64();
  state.epoch_steps = r.i64();
  state.epoch_wall_ns = r.i64();
  r.end_section();

  RunReport& rep = state.report;
  r.begin_section("report");
  rep.policy = r.str();
  rep.phases.compute = r.f64();
  rep.phases.comm = r.f64();
  rep.phases.sync = r.f64();
  rep.phases.rebalance = r.f64();
  rep.lb_invocations = r.i64();
  rep.initial_blocks = static_cast<std::size_t>(r.u64());
  rep.msgs_local = r.i64();
  rep.msgs_remote = r.i64();
  rep.msgs_intra_rank = r.i64();
  rep.bytes_local = r.i64();
  rep.bytes_remote = r.i64();
  rep.msgs_coalesced = r.i64();
  rep.bytes_packed = r.i64();
  rep.blocks_migrated = r.i64();
  rep.budget_violations = r.i64();
  rep.rank_compute_seconds = r.vec_pod<double>();
  rep.placement_ms = r.vec_pod<double>();
  CriticalPathStats cp;
  cp.windows = r.i64();
  cp.one_rank_paths = r.i64();
  cp.two_rank_paths = r.i64();
  cp.straggler_wait_ms = read_stats(r);
  cp.straggler_compute_ms = read_stats(r);
  cp.window_ms = read_stats(r);
  runtime.critical_path.restore_stats(cp);
  r.end_section();

  r.begin_section("mesh");
  const std::uint64_t mesh_version = r.u64();
  std::vector<BlockCoord> leaves = r.vec_pod<BlockCoord>();
  std::vector<MeshRemap> remaps(r.u32());
  for (MeshRemap& m : remaps) {
    m.from_version = r.u64();
    m.to_version = r.u64();
    m.src = r.vec_pod<std::int32_t>();
    m.kind = r.vec_pod<RemapKind>();
    m.carried = static_cast<std::size_t>(r.u64());
    m.old_size = static_cast<std::size_t>(r.u64());
    if (m.kind.size() != m.src.size())
      throw io::SnapshotError(
          "snapshot: mesh remap kind/src length mismatch");
  }
  r.end_section();
  state.mesh.restore_state(std::move(leaves), mesh_version,
                           std::move(remaps));
  if (state.placement.size() != state.mesh.size())
    throw io::SnapshotError(
        "snapshot: placement size does not match the restored mesh");

  r.begin_section("engine");
  Engine::Clock clock;
  clock.now = r.i64();
  clock.front_time = r.i64();
  clock.next_seq = r.u64();
  clock.processed = r.u64();
  if (runtime.sharded)
    runtime.sharded->restore_clock(clock);
  else
    runtime.engine.restore_clock(clock);
  r.end_section();

  r.begin_section("rng");
  runtime.rng.set_state(read_rng(r));
  r.end_section();

  r.begin_section("fabric");
  Fabric::State fab;
  fab.rng = read_rng(r);
  fab.stats.remote_msgs = r.i64();
  fab.stats.shm_msgs = r.i64();
  fab.stats.remote_bytes = r.i64();
  fab.stats.shm_bytes = r.i64();
  fab.stats.shm_retries = r.i64();
  fab.stats.acks_lost = r.i64();
  fab.stats.ack_block_time = r.i64();
  fab.stats.packed_transfers = r.i64();
  fab.stats.coalesced_msgs = r.i64();
  fab.nic_busy_until = r.vec_pod<TimeNs>();
  fab.shm_slot_free.resize(r.u32());
  for (auto& slots : fab.shm_slot_free) slots = r.vec_pod<TimeNs>();
  if (runtime.fabric.sharded()) {
    const std::uint32_t nnodes = r.u32();
    fab.node_rngs.resize(nnodes);
    fab.node_stats.resize(nnodes);
    for (Rng::State& s : fab.node_rngs) s = read_rng(r);
    for (FabricStats& s : fab.node_stats) {
      s.remote_msgs = r.i64();
      s.shm_msgs = r.i64();
      s.remote_bytes = r.i64();
      s.shm_bytes = r.i64();
      s.shm_retries = r.i64();
      s.acks_lost = r.i64();
      s.ack_block_time = r.i64();
      s.packed_transfers = r.i64();
      s.coalesced_msgs = r.i64();
    }
  }
  r.end_section();
  runtime.fabric.import_state(fab);

  r.begin_section("workload");
  const std::vector<std::uint8_t> blob = r.vec_pod<std::uint8_t>();
  r.end_section();
  workload.restore_state(blob);

  r.begin_section("collector");
  collector.set_block_records(r.b());
  Table phases = read_table(r, collector.phases());
  Table comm = read_table(r, collector.comm());
  Table blocks = read_table(r, collector.blocks());
  Table shard_tab = read_table(r, collector.shards());
  Table placement_tab = read_table(r, collector.placement());
  collector.restore(std::move(phases), std::move(comm), std::move(blocks),
                    std::move(shard_tab), std::move(placement_tab));
  r.end_section();

  r.begin_section("tracer");
  const bool had_tracer = r.b();
  require(had_tracer == (tracer != nullptr), "tracer presence");
  if (had_tracer) {
    const std::uint64_t dropped = r.u64();
    const std::uint64_t recorded = r.u64();
    const std::uint64_t next_flow_id = r.u64();
    const std::uint32_t n = r.u32();
    std::vector<std::string> names(n);
    std::vector<TraceEvent> events(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      TraceEvent& ev = events[i];
      ev.ts = r.i64();
      ev.dur = r.i64();
      ev.id = r.u64();
      ev.a = r.i64();
      ev.b = r.i64();
      names[i] = r.str();
      ev.name = names[i].c_str();
      ev.track = r.i32();
      ev.type = static_cast<TraceEventType>(r.u8());
      ev.cat = static_cast<TraceCat>(r.u8());
    }
    tracer->restore(events, dropped, recorded, next_flow_id);
  }
  r.end_section();
}

}  // namespace amr
