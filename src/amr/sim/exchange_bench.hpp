// Boundary-exchange round harness.
//
// Shared machinery behind commbench (paper §VI-C / Fig 7a) and the Fig 1/3
// tuning experiments: run repeated boundary-exchange rounds over a fixed
// mesh + placement, timing each barrier-to-barrier round, with optional
// per-block compute preceding the exchange (Fig 3 needs compute in the
// schedule to show the task-reordering effect).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "amr/common/rng.hpp"
#include "amr/exec/rank_runtime.hpp"
#include "amr/exec/work.hpp"
#include "amr/net/fabric.hpp"
#include "amr/placement/policy.hpp"
#include "amr/simmpi/comm.hpp"

namespace amr {

struct ExchangeRoundsConfig {
  std::int32_t nranks = 64;
  std::int32_t ranks_per_node = 16;
  FabricParams fabric = FabricParams::tuned();
  CollectiveParams collective{};
  ExecParams exec{};
  MessageSizeModel msg_sizes{};
  TaskOrdering ordering = TaskOrdering::kSendFirst;
  std::int32_t rounds = 100;
  std::int32_t warmup_rounds = 3;    ///< discarded cold-start rounds
  TimeNs outlier_cutoff = ms(10.0);  ///< discard rounds above (paper §VI-C)
  std::uint64_t seed = 7;

  /// Optional per-block compute cost preceding the exchange (Fig 3);
  /// zero = pure communication rounds (commbench).
  std::function<TimeNs(std::size_t block, std::int32_t round, Rng& rng)>
      compute_cost;
};

struct ExchangeRoundsResult {
  std::vector<double> round_latency_ms;   ///< kept rounds only
  std::int32_t rounds_discarded = 0;      ///< outliers above the cutoff
  /// Mean per-rank boundary communication time (pack+copy+waits) across
  /// kept rounds, indexed by rank — the Fig 3 rankwise series.
  std::vector<double> rank_comm_ms;
  /// Per-rank coefficient of variation of comm time across rounds.
  std::vector<double> rank_comm_cv;
  /// Raw per-(round, rank) comm-time samples (kept rounds only),
  /// indexed [round][rank]. Includes passive recv-wait idle.
  std::vector<std::vector<double>> round_rank_comm_ms;
  /// Active MPI time per (round, rank): pack/unpack/copies + send-side
  /// MPI_Wait. This is the Fig 1a "communication time" — the passive
  /// recv idle equalizes across ranks in a BSP round and would mask the
  /// work->time relation for every configuration.
  std::vector<std::vector<double>> round_rank_active_ms;
  FabricStats fabric_stats;
};

/// Run `rounds` boundary-exchange rounds of `mesh` under `placement`.
ExchangeRoundsResult run_exchange_rounds(const AmrMesh& mesh,
                                         const Placement& placement,
                                         const ExchangeRoundsConfig& config);

}  // namespace amr
