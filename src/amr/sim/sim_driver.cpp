#include "amr/sim/sim_driver.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <stdexcept>

#include "amr/faults/injector.hpp"
#include "amr/workloads/cooling.hpp"
#include "amr/workloads/sedov.hpp"

namespace amr {

namespace {

void appendf(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
void appendf(std::string& out, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  if (n > 0) {
    const std::size_t at = out.size();
    out.resize(at + static_cast<std::size_t>(n) + 1);
    std::vsnprintf(out.data() + at, static_cast<std::size_t>(n) + 1, fmt,
                   args);
    out.resize(at + static_cast<std::size_t>(n));
  }
  va_end(args);
}

}  // namespace

std::string validate_job(const JobSpec& spec) {
  if (spec.ranks <= 0) return "ranks must be positive";
  if (spec.steps <= 0) return "steps must be positive";
  if (!spec.restore.empty() && !spec.replay.empty())
    return "--restore and --replay are mutually exclusive";
  if (spec.aggregate && spec.comm_adaptive)
    return "--aggregate and --comm-adaptive are mutually exclusive "
           "(adaptive packing subsumes the aggregate flag)";
  if (spec.pack_threshold >= 0 && !spec.comm_adaptive)
    return "--pack-threshold requires --comm-adaptive";
  if (spec.des_shards > 0 && spec.overlap)
    return "--des-shards requires --execution=bsp (overlap self-events "
           "carry no dispatch keys)";
  if (spec.cplx_budget_ms >= 0 && !spec.auto_cplx)
    return "--cplx-budget-ms requires --auto-cplx";
  if (spec.auto_cplx && spec.cplx_budget_ms == 0)
    return "--cplx-budget-ms must be positive";
  return "";
}

RootGrid grid_for_ranks(std::int64_t ranks) {
  std::uint32_t nx = 1;
  std::uint32_t ny = 1;
  std::uint32_t nz = 1;
  int axis = 2;  // grow z first: 8x8x16 at 1024 like the paper
  for (std::int64_t r = ranks; r > 1; r /= 2) {
    (axis == 0 ? nx : axis == 1 ? ny : nz) *= 2;
    axis = (axis + 2) % 3;
  }
  return RootGrid{nx, ny, nz};
}

SimulationConfig base_sim_config(std::int64_t ranks, std::int64_t steps) {
  SimulationConfig cfg;
  cfg.nranks = static_cast<std::int32_t>(ranks);
  cfg.ranks_per_node = 16;
  cfg.root_grid = grid_for_ranks(ranks);
  cfg.steps = steps;
  cfg.collect_telemetry = false;
  return cfg;
}

void add_fault_schedule(SimulationConfig& cfg, std::int32_t fault_nodes,
                        std::int64_t steps) {
  if (fault_nodes <= 0) return;
  const std::int32_t nodes = std::max(1, cfg.nranks / cfg.ranks_per_node);
  Rng victims(cfg.seed ^ 0xfa17u);
  ThrottleFault fault;
  fault.nodes =
      pick_victim_nodes(nodes, std::min(fault_nodes, nodes), victims);
  fault.factor = 4.0;
  fault.onset_step = steps / 4;
  fault.end_step = (3 * steps) / 4;
  cfg.faults.add_throttle(fault);
}

SimulationConfig job_config(const JobSpec& spec) {
  SimulationConfig cfg = base_sim_config(spec.ranks, spec.steps);
  cfg.collect_telemetry = spec.collect_telemetry;
  cfg.execution =
      spec.overlap ? ExecutionMode::kOverlap : ExecutionMode::kBsp;
  // The overlap builder has no flux path; keep the fingerprint honest so
  // restores cannot silently claim flux messages.
  cfg.include_flux_correction = cfg.execution == ExecutionMode::kBsp;
  cfg.aggregate_messages = spec.aggregate;
  cfg.comm_adaptive = spec.comm_adaptive;
  cfg.comm_pack_threshold = spec.pack_threshold;
  cfg.send_priority = spec.send_priority;
  cfg.des_shards = spec.des_shards;
  cfg.incremental_plans = spec.incremental_plans;
  cfg.auto_cplx = spec.auto_cplx;
  cfg.placement_incremental = spec.placement_incremental;
  if (spec.cplx_budget_ms > 0)
    cfg.cplx_budget_ms = static_cast<double>(spec.cplx_budget_ms);
  cfg.checkpoint_every = spec.checkpoint_every;
  cfg.checkpoint_dir = spec.checkpoint_dir;
  if (spec.trace) {
    cfg.trace_enabled = true;
    if (spec.trace_capacity > 0) cfg.trace.capacity = spec.trace_capacity;
  }
  add_fault_schedule(cfg, spec.fault_nodes, spec.steps);
  return cfg;
}

std::unique_ptr<Workload> make_job_workload(const JobSpec& spec) {
  if (spec.workload == "sedov") {
    SedovParams p;
    p.total_steps = spec.steps;
    if (spec.sedov_max_level > 0) p.max_level = spec.sedov_max_level;
    return std::make_unique<SedovWorkload>(p);
  }
  if (spec.workload == "cooling")
    return std::make_unique<CoolingWorkload>(CoolingParams{});
  return nullptr;
}

std::string compact_report_text(const RunReport& r, bool show_packing) {
  std::string out;
  const double total = r.phases.total();
  appendf(out,
          "policy %s: wall %.4f s | compute %.1f%% comm %.1f%% sync "
          "%.1f%% rebal %.1f%%\n",
          r.policy.c_str(), r.wall_seconds, 100 * r.phases.compute / total,
          100 * r.phases.comm / total, 100 * r.phases.sync / total,
          100 * r.phases.rebalance / total);
  appendf(out,
          "  blocks %zu -> %zu | %lld redistributions, %lld moved, "
          "%lld over budget\n",
          r.initial_blocks, r.final_blocks,
          static_cast<long long>(r.lb_invocations),
          static_cast<long long>(r.blocks_migrated),
          static_cast<long long>(r.budget_violations));
  appendf(out,
          "  msgs: %lld local, %lld remote, %lld memcpy | critical "
          "paths: %lld 1-rank, %lld 2-rank\n",
          static_cast<long long>(r.msgs_local),
          static_cast<long long>(r.msgs_remote),
          static_cast<long long>(r.msgs_intra_rank),
          static_cast<long long>(r.critical_path.one_rank_paths),
          static_cast<long long>(r.critical_path.two_rank_paths));
  // Only in packing modes: legacy stdout stays byte-identical.
  if (show_packing) {
    appendf(out,
            "  aggregation: %lld msgs coalesced, %lld bytes packed\n",
            static_cast<long long>(r.msgs_coalesced),
            static_cast<long long>(r.bytes_packed));
  }
  return out;
}

std::string verbose_report_text(const RunReport& report, bool timing,
                                bool show_packing) {
  std::string out;
  appendf(out, "\n== run report: %s ==\n", report.policy.c_str());
  appendf(out, "wall time            %10.3f s (simulated)\n",
          report.wall_seconds);
  const double total = report.phases.total();
  appendf(out, "  compute            %10.3f s (%4.1f%%)\n",
          report.phases.compute, 100 * report.phases.compute / total);
  appendf(out, "  communication      %10.3f s (%4.1f%%)\n",
          report.phases.comm, 100 * report.phases.comm / total);
  appendf(out, "  synchronization    %10.3f s (%4.1f%%)\n",
          report.phases.sync, 100 * report.phases.sync / total);
  appendf(out, "  rebalancing        %10.3f s (%4.1f%%)\n",
          report.phases.rebalance, 100 * report.phases.rebalance / total);
  appendf(out, "blocks               %zu -> %zu\n", report.initial_blocks,
          report.final_blocks);
  appendf(out, "redistributions      %lld (moved %lld blocks)\n",
          static_cast<long long>(report.lb_invocations),
          static_cast<long long>(report.blocks_migrated));
  // Placement wall-clock is host-measured (nondeterministic), so it only
  // prints under --timing; everything else is simulated time and
  // byte-stable across --jobs.
  if (timing && !report.placement_ms.empty()) {
    double max_ms = 0;
    double sum_ms = 0;
    for (const double m : report.placement_ms) {
      max_ms = std::max(max_ms, m);
      sum_ms += m;
    }
    appendf(out,
            "placement compute    mean %.3f ms, max %.3f ms "
            "(budget: 50 ms)\n",
            sum_ms / static_cast<double>(report.placement_ms.size()),
            max_ms);
  }
  appendf(out,
          "P2P messages         %lld local, %lld remote (%.0f%% remote), "
          "%lld memcpy'd\n",
          static_cast<long long>(report.msgs_local),
          static_cast<long long>(report.msgs_remote),
          100.0 * static_cast<double>(report.msgs_remote) /
              static_cast<double>(std::max<std::int64_t>(
                  1, report.msgs_local + report.msgs_remote)),
          static_cast<long long>(report.msgs_intra_rank));
  // Printed only in packing modes so legacy stdout stays byte-identical.
  if (show_packing) {
    const std::int64_t transfers = report.msgs_local + report.msgs_remote;
    appendf(out,
            "aggregation          %lld msgs coalesced into %lld transfers "
            "(%.2fx), %lld bytes packed\n",
            static_cast<long long>(report.msgs_coalesced),
            static_cast<long long>(transfers),
            static_cast<double>(report.msgs_coalesced + transfers) /
                static_cast<double>(std::max<std::int64_t>(1, transfers)),
            static_cast<long long>(report.bytes_packed));
  }
  appendf(out,
          "critical paths       %lld windows: %lld one-rank, "
          "%lld two-rank\n",
          static_cast<long long>(report.critical_path.windows),
          static_cast<long long>(report.critical_path.one_rank_paths),
          static_cast<long long>(report.critical_path.two_rank_paths));
  return out;
}

SimDriver::SimDriver(const JobSpec& spec, SharedPlanStore* shared_plans)
    : spec_(spec) {
  const std::string err = validate_job(spec_);
  if (!err.empty()) throw std::runtime_error(err);
  config_ = job_config(spec_);
  config_.shared_plans = shared_plans;
  workload_ = make_job_workload(spec_);
  if (!workload_)
    throw std::runtime_error("unknown workload " + spec_.workload +
                             " (sedov | cooling)");
  policy_ = make_policy(spec_.policy);  // throws on an unknown policy
  sim_ = std::make_unique<Simulation>(config_, *workload_, *policy_);
  const std::string snapshot =
      !spec_.restore.empty() ? spec_.restore : spec_.replay;
  if (!snapshot.empty()) {
    sim_->restore_checkpoint(snapshot);  // throws SnapshotError on mismatch
    char buf[512];
    std::snprintf(buf, sizeof(buf), "%s %s at step %lld (policy=%s)",
                  spec_.replay.empty() ? "restored" : "replaying",
                  snapshot.c_str(),
                  static_cast<long long>(sim_->current_step()),
                  policy_->name().c_str());
    restore_note_ = buf;
  }
}

SimDriver::~SimDriver() = default;

}  // namespace amr
