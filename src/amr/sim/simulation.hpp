// End-to-end AMR simulation driver.
//
// Wires the full stack together the way the paper's runs were assembled:
// workload physics evolve the mesh; telemetry from executed steps feeds
// the placement policy's cost inputs (telemetry-driven placement — the
// policy never sees oracle costs, only what was measured, including any
// hardware-fault inflation); redistribution renumbers blocks along the
// SFC, invokes the policy, and charges migration; the step executor runs
// the BSP step on the simulated cluster.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "amr/common/time.hpp"
#include "amr/exec/critical_path.hpp"
#include "amr/exec/overlap.hpp"
#include "amr/exec/work.hpp"
#include "amr/faults/injector.hpp"
#include "amr/net/fabric.hpp"
#include "amr/placement/policy.hpp"
#include "amr/sim/triggers.hpp"
#include "amr/simmpi/comm.hpp"
#include "amr/telemetry/collector.hpp"
#include "amr/trace/tracer.hpp"
#include "amr/workloads/workload.hpp"

namespace amr {

class SharedPlanStore;

/// Execution strategy for each BSP step (paper §II-A: task-based
/// runtimes mask residual imbalance by overlapping independent work).
enum class ExecutionMode : std::uint8_t { kBsp = 0, kOverlap = 1 };

constexpr const char* to_string(ExecutionMode m) {
  return m == ExecutionMode::kBsp ? "bsp" : "overlap";
}

struct SimulationConfig {
  std::int32_t nranks = 64;
  std::int32_t ranks_per_node = 16;
  RootGrid root_grid{4, 4, 4};
  std::int64_t steps = 50;
  TaskOrdering ordering = TaskOrdering::kSendFirst;
  ExecutionMode execution = ExecutionMode::kBsp;
  /// Fine->coarse flux-correction messages along refinement boundaries
  /// (paper §II-B).
  bool include_flux_correction = true;
  /// Per-destination message aggregation: coalesce all same-(src,dst)
  /// boundary sends of a step into one packed transfer (Parthenon-style
  /// neighbor-buffer packing). Off = legacy per-neighbor-pair path,
  /// byte-identical to builds without this option. Works under both BSP
  /// and overlap execution (overlap receivers credit every destination
  /// block when the aggregate arrives). Mutually exclusive with
  /// comm_adaptive, which subsumes it.
  bool aggregate_messages = false;
  /// Adaptive per-peer packing: each (src,dst) pair packs or sends
  /// eagerly by comparing its mean bytes/message against an
  /// eager/rendezvous-style threshold derived from FabricParams
  /// (FabricParams::pack_threshold). Under BSP the model packs every
  /// pair (the receiver waits for all arrivals, so deferral is free);
  /// under overlap small-message pairs pack while large-payload pairs go
  /// eagerly so dependent blocks unblock sooner. Thresholds are pure
  /// functions of modeled costs: runs stay deterministic and
  /// checkpoint/replay-compatible (the axes are in the snapshot
  /// fingerprint). Off = byte-identical legacy behavior.
  bool comm_adaptive = false;
  /// Global packing-threshold override in mean bytes/message (requires
  /// comm_adaptive): >= 0 replaces both modeled thresholds — the
  /// hand-picked global setting the adaptive split is benchmarked
  /// against (bench_comm_adaptive). -1 = use the modeled thresholds.
  std::int64_t comm_pack_threshold = -1;
  /// Critical-path-aware send priority (§IV critical-path model): each
  /// step schedules sends destined for the previous window's straggler
  /// rank — the predicted critical-path successor — before other sends.
  /// Off = legacy send order, byte-identical.
  bool send_priority = false;
  /// Parallel DES sharding (the profiling-paper scaling lever): partition
  /// the event queue by cluster node into `des_shards` shards (clamped to
  /// the node count) and run them concurrently under a conservative
  /// lookahead of the fabric's remote latency. 0 = the legacy sequential
  /// engine, byte-identical to builds without this option. Any value
  /// >= 1 selects the sharded configuration, whose output is identical
  /// for every shard count (ctest par_des_determinism) but NOT to the
  /// sequential run (per-node fabric RNG streams draw different jitter).
  /// BSP execution only. Event tracing is reduced to driver-level events
  /// (step/rebalance/fault/critical-path plus per-shard epoch counters):
  /// the engine/fabric/comm taps stay detached because concurrent shards
  /// cannot share the trace ring.
  std::int32_t des_shards = 0;
  FabricParams fabric = FabricParams::tuned();
  CollectiveParams collective{};
  ExecParams exec{};
  MessageSizeModel msg_sizes{};
  std::uint64_t seed = 42;

  /// Use measured telemetry (previous steps) as placement cost input.
  /// When false, placement sees uniform costs (the frameworks' default
  /// "cost hooks initialized to 1" behaviour, §V-A3).
  bool telemetry_driven_costs = true;

  /// Deterministic rebalance-phase charge per invocation (placement
  /// computation inside the run); real wall-clock placement times are
  /// reported separately for the Fig 7c budget analysis. The default
  /// matches the paper's 50 ms budget scaled to the simulator's time
  /// units (block kernels run ~1000x faster than the 250 ms production
  /// timesteps).
  TimeNs placement_charge = us(50.0);

  /// The paper's hard redistribution budget: placement computation must
  /// finish within placement_budget_ms of real time. With enforcement
  /// on, an over-budget result is discarded in favour of the cheap
  /// baseline split for that invocation (and counted in the report).
  double placement_budget_ms = 50.0;
  bool enforce_placement_budget = false;

  /// Auto-X: hand redistribution decisions to the self-tuning CPLX
  /// engine (placement/tuner.hpp). Each regrid epoch it scores a
  /// budgeted set of candidate X values in parallel and picks the one
  /// whose predicted step time is lowest, learning the predictor online
  /// from the run's own simulated telemetry. The configured policy still
  /// provides the initial placement and the CPLX chunk width; reports
  /// carry policy name "auto-cplx". Off = byte-identical legacy
  /// behaviour. Snapshot fingerprint axis (format v5); tuner state rides
  /// in the snapshot so restored runs decide identically.
  bool auto_cplx = false;
  /// Auto-X evaluation budget in ms: bounds how many candidate X values
  /// are scored per epoch under a MODELED per-candidate cost (a pure
  /// function of the block count — never wall-clock, so decisions are
  /// replay-stable). The paper's 50 ms placement budget by default.
  double cplx_budget_ms = 50.0;
  /// Incremental placement: route CPLX placements through the run's
  /// PlacementEngine, which reuses unchanged SFC-chunk solves from the
  /// previous epoch and runs the rest in parallel. Results are
  /// byte-identical to the full rebuild (ctest
  /// placement_tuning_determinism); off is the reference path. Inert for
  /// non-CPLX policies. Snapshot fingerprint axis (format v5).
  bool placement_incremental = false;
  double migration_gbytes_per_sec = 4.0;
  /// Payload of one migrated block; defaults to the message-size model's
  /// block interior so the two stay one source of truth.
  std::int64_t migrated_block_bytes =
      MessageSizeModel{}.block_payload_bytes();

  /// When to redistribute beyond mandatory mesh changes.
  RebalanceTrigger trigger{};

  /// Record per-(step,rank) rows into the telemetry collector.
  bool collect_telemetry = true;
  /// Also record per-(step,block) rows (large).
  bool collect_block_telemetry = false;

  /// Event-level tracing (off by default; see amr/trace/tracer.hpp).
  /// When enabled the run records task spans, message flows, fabric
  /// counters, fault transitions, and the critical-path overlay into a
  /// bounded ring buffer exposed via Simulation::tracer().
  bool trace_enabled = false;
  TraceConfig trace{};

  /// Incremental step pipeline: reuse exchange plans across steps until a
  /// regrid or rebalance bumps the (mesh, placement) version pair. Off =
  /// rebuild every plan from scratch each step. Both paths produce
  /// byte-identical RunReports, telemetry, and traces (ctest
  /// step_pipeline_determinism holds them to it); off exists as the
  /// reference for that contract and for A/B benchmarking.
  bool incremental_plans = true;

  /// Checkpointing: every `checkpoint_every` steps (0 = never) write a
  /// snapshot `ckpt_<step>.amrs` into `checkpoint_dir`. Snapshots are
  /// taken at step boundaries (drained event queue); restoring one and
  /// continuing reproduces the uninterrupted run byte-for-byte (ctest
  /// checkpoint_determinism holds the stack to it).
  std::int64_t checkpoint_every = 0;
  std::string checkpoint_dir = ".";

  /// Cross-tenant exchange-plan sharing (amrcplx serve): when set, the
  /// run's plan cache consults this store on every version-key miss and
  /// publishes what it builds. Borrowed, thread-safe, and deliberately
  /// outside the snapshot fingerprint — hits only change who built a
  /// plan, never its bytes, so sharing is invisible to stdout, reports,
  /// tables, and checkpoints. Tenants may only share a store when their
  /// (topology, mode-matrix) fingerprints agree; SharedPlanStore
  /// re-verifies every axis per lookup regardless.
  SharedPlanStore* shared_plans = nullptr;

  FaultInjector faults;
};

/// Phase totals averaged across ranks, in seconds of simulated time.
struct PhaseBreakdown {
  double compute = 0.0;
  double comm = 0.0;
  double sync = 0.0;
  double rebalance = 0.0;

  double total() const { return compute + comm + sync + rebalance; }
};

struct RunReport {
  std::string policy;
  double wall_seconds = 0.0;       ///< simulated end-to-end runtime
  PhaseBreakdown phases;           ///< rank-averaged phase seconds
  std::int64_t steps = 0;
  std::int64_t lb_invocations = 0; ///< redistributions performed
  std::size_t initial_blocks = 0;
  std::size_t final_blocks = 0;
  std::int64_t msgs_local = 0;     ///< intra-node MPI messages
  std::int64_t msgs_remote = 0;    ///< inter-node MPI messages
  std::int64_t msgs_intra_rank = 0;  ///< memcpy'd neighbor pairs
  std::int64_t bytes_local = 0;
  std::int64_t bytes_remote = 0;
  /// Aggregation effect (0 unless aggregate_messages): logical messages
  /// absorbed into packed transfers, and the bytes those transfers moved.
  std::int64_t msgs_coalesced = 0;
  std::int64_t bytes_packed = 0;
  std::int64_t blocks_migrated = 0;
  std::int64_t budget_violations = 0;  ///< placements over the budget
  std::vector<double> rank_compute_seconds;  ///< per-rank compute totals
  std::vector<double> placement_ms;  ///< real wall-clock per invocation
  CriticalPathStats critical_path;
};

/// Incrementality counters for the last run() — diagnostics only, kept
/// out of RunReport so reports stay byte-identical across pipeline modes.
struct StepPipelineStats {
  std::int64_t plan_hits = 0;    ///< steps served from the plan cache
  std::int64_t plan_misses = 0;  ///< steps that (re)built plans
  /// Of the misses, how many were filled from a cross-tenant
  /// SharedPlanStore. A scheduling artifact (who built first), so unlike
  /// the counters above it is never serialized into snapshots and resets
  /// on restore.
  std::int64_t plan_share_hits = 0;
  /// Mode-independent predictions from (mesh, placement) version changes;
  /// with incremental_plans on, the actual counters must match these.
  std::int64_t predicted_hits = 0;
  std::int64_t predicted_misses = 0;
  std::int64_t telemetry_drops = 0;  ///< cost carries lost to aged remaps
};

struct SimState;
struct SimRuntime;

class Simulation {
 public:
  /// The workload and policy are borrowed for the lifetime of the run.
  Simulation(SimulationConfig config, Workload& workload,
             const PlacementPolicy& policy);
  ~Simulation();

  /// Execute the configured number of steps (or the remaining ones after
  /// restore_checkpoint). Telemetry accumulates in collector(); the
  /// report summarizes the run. The run loop is an explicit state
  /// machine — begin / advance* / finish — over SimState, and those
  /// pieces are public so a scheduler can time-slice the run:
  /// run() == begin(); advance(all); finish().
  RunReport run();

  /// Construct runtime + state and compute the initial placement. A
  /// no-op if the run is already begun (so restore_checkpoint composes);
  /// after finish() a further begin() starts over from scratch.
  void begin();

  /// Execute up to `max_steps` further steps (honouring the configured
  /// checkpoint cadence) and return how many actually ran — fewer only
  /// when the step horizon is reached. Implies begin(). The quantum
  /// scheduler's slice primitive: any partition of the horizon into
  /// advance() calls is byte-identical to one run() (steps are the
  /// state-machine granularity; nothing carries across the boundary
  /// that is not in SimState).
  std::int64_t advance(std::int64_t max_steps);

  /// True once every configured step has executed (begun or finished).
  bool done() const;

  /// Seal and return the report; requires done(). Resets the begun flag
  /// so the next run()/begin() starts over.
  RunReport finish();

  /// Modeled resident-set estimate of a begun simulation in bytes: mesh
  /// + placement + carried telemetry + exchange plans + collector
  /// tables. Deterministic (capacity-based, no allocator introspection);
  /// the serve scheduler's eviction signal, not an exact RSS.
  std::size_t resident_bytes() const;

  /// Snapshot the full simulation (config fingerprint, SimState, DES
  /// clock, RNG streams, fabric dynamics, workload, telemetry, trace
  /// ring) at the current step boundary. Returns false on I/O failure.
  bool save_checkpoint(const std::string& path) const;

  /// Resume from a snapshot: the next run() continues at the saved step
  /// and produces output byte-identical to the uninterrupted run. The
  /// configured policy may differ from the saved one (replay); the
  /// config fingerprint must otherwise match or io::SnapshotError is
  /// thrown.
  void restore_checkpoint(const std::string& path);

  /// Steps completed so far (0 before any run; config.steps after one).
  std::int64_t current_step() const;

  const Collector& collector() const { return collector_; }

  /// Non-null iff config.trace_enabled; survives across run() calls so
  /// exporters can consume the buffer afterwards.
  const Tracer* tracer() const { return tracer_.get(); }

  /// Cache behaviour of the last run().
  const StepPipelineStats& pipeline_stats() const;

  /// Live shared-store fill count of the current run session (the serve
  /// scheduler harvests this before evicting, since eviction discards
  /// the plan cache along with the runtime).
  std::int64_t plan_share_hits() const;

 private:
  /// Construct runtime + state and compute the initial placement.
  void begin_run();
  /// Execute one full step (evolve, rebalance, faults, execute,
  /// telemetry) and advance state_->step.
  void step_once();
  /// Seal the report (wall clock, final blocks, critical path).
  RunReport finish_run();

  /// Fill per-block cost estimates for placement; false when telemetry
  /// is not yet available and the uniform default was used (the auto-X
  /// tuner must not scale-learn from such an epoch).
  bool estimated_costs(const AmrMesh& mesh, std::vector<TimeNs>& out);
  void remember_costs(const AmrMesh& mesh,
                      std::span<const TimeNs> measured);
  /// Carry state_->measured_flat forward to mesh.version() by composing
  /// the mesh's renumbering records; false if telemetry had to be
  /// dropped (no measurements yet, or a remap aged out of the history).
  bool sync_measured_costs(const AmrMesh& mesh);
  /// prev_rank[b] = rank block b had under `placement` computed at mesh
  /// version `from_version` (-1 if b did not exist then): the carried-only
  /// composition of the renumbering records from that version to now.
  void previous_ranks(const AmrMesh& mesh, std::uint64_t from_version,
                      const Placement& placement,
                      std::vector<std::int32_t>& prev_rank);

  SimulationConfig config_;
  Workload& workload_;
  const PlacementPolicy& policy_;
  Collector collector_;
  std::unique_ptr<Tracer> tracer_;
  std::unique_ptr<SimRuntime> runtime_;
  std::unique_ptr<SimState> state_;
  /// True between begin_run/restore_checkpoint and the end of run();
  /// run() on a finished simulation starts over from scratch.
  bool begun_ = false;
};

}  // namespace amr
