#include "amr/workloads/sedov.hpp"

#include <cmath>

#include "amr/mesh/coords.hpp"
#include "amr/mesh/generators.hpp"

namespace amr {

double SedovWorkload::front_radius(std::int64_t step) const {
  if (step <= 0) return 0.0;
  const double t = std::min(
      1.0, static_cast<double>(step) /
               static_cast<double>(params_.total_steps));
  return params_.max_radius * std::pow(t, 0.4);
}

double SedovWorkload::distance_to_center(const Aabb& box) const {
  const auto c = box.center();
  const double dx = c[0] - params_.center[0];
  const double dy = c[1] - params_.center[1];
  const double dz = c[2] - params_.center[2];
  return std::sqrt(dx * dx + dy * dy + dz * dz);
}

bool SedovWorkload::evolve(AmrMesh& mesh, std::int64_t step) {
  if (step % params_.check_period != 0) return false;
  const double radius = front_radius(step);
  const std::size_t before = mesh.size();

  // Refine blocks the shock shell currently crosses.
  std::size_t refined = refine_shell(mesh, params_.center, radius,
                                     params_.shell_half_width,
                                     params_.max_level);

  // Coarsen refined blocks the front has left well behind (or not yet
  // reached): tag every block farther than the margin from the shell.
  const double margin =
      params_.coarsen_margin * params_.shell_half_width;
  std::vector<std::int32_t> tags;
  for (std::size_t b = 0; b < mesh.size(); ++b) {
    if (mesh.block(b).level == 0) continue;
    const double d = distance_to_center(mesh.bounds(b));
    if (std::abs(d - radius) > margin + params_.shell_half_width)
      tags.push_back(static_cast<std::int32_t>(b));
  }
  const std::size_t coarsened = mesh.coarsen(tags);

  return refined > 0 || coarsened > 0 || mesh.size() != before;
}

TimeNs SedovWorkload::block_cost(const AmrMesh& mesh, std::size_t block,
                                 std::int64_t step) const {
  const Aabb box = mesh.bounds(block);
  const double d = distance_to_center(box);
  const double radius = front_radius(step);

  // Cost bump near the front: kernels iterate more in steep gradients.
  const double u = (d - radius) / std::max(params_.cost_sigma, 1e-9);
  const double proximity = std::exp(-0.5 * u * u);

  // Deterministic noise keyed by block coordinates: the persistent
  // component survives across steps (and renumbering), so measured
  // telemetry predicts the next step; the jitter component re-rolls per
  // step.
  const std::uint64_t block_hash =
      hash64(block_key(mesh.block(block)) ^ params_.seed);
  Rng persistent_rng(block_hash);
  const double persistent =
      persistent_rng.chance(params_.hot_fraction)
          ? persistent_rng.lognormal(params_.hot_mu, params_.hot_sigma)
          : persistent_rng.lognormal(0.0, params_.noise_sigma);
  Rng jitter_rng(
      hash64(block_hash ^ hash64(static_cast<std::uint64_t>(step))));
  const double jitter = jitter_rng.lognormal(0.0, params_.jitter_sigma);

  const double cost = static_cast<double>(params_.base_cost) *
                      (1.0 + params_.front_boost * proximity) *
                      persistent * jitter;
  return static_cast<TimeNs>(cost);
}

}  // namespace amr
