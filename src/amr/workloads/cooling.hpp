// Galaxy-cooling-flow workload (the AthenaPK setup of paper §VI).
//
// A dense central clump with a cooling instability: the mesh refines in a
// ball around the center once and stays static; per-block cost follows a
// heavy-tailed profile that falls off with distance from the clump and
// flickers over time (thermal instability). Compared to Sedov this has
// higher sustained compute variability in a spatially fixed region —
// the regime the paper reports as benefiting most from placement.
#pragma once

#include <array>

#include "amr/common/rng.hpp"
#include "amr/workloads/workload.hpp"

namespace amr {

struct CoolingParams {
  std::array<double, 3> center{0.5, 0.5, 0.5};
  double clump_radius = 0.25;   ///< refined ball radius
  int max_level = 1;
  TimeNs base_cost = us(250.0);
  double clump_boost = 5.0;     ///< peak cost multiplier at the center
  double falloff = 3.0;         ///< cost ~ boost / (1 + (d/r)*falloff)
  double noise_sigma = 0.30;    ///< lognormal flicker (instability)
  std::uint64_t seed = 2;
};

class CoolingWorkload final : public Workload {
 public:
  explicit CoolingWorkload(CoolingParams params) : params_(params) {}

  std::string name() const override { return "cooling"; }

  bool evolve(AmrMesh& mesh, std::int64_t step) override;

  TimeNs block_cost(const AmrMesh& mesh, std::size_t block,
                    std::int64_t step) const override;

  const CoolingParams& params() const { return params_; }

  /// The refine-once latch is cross-step state: without it a restored run
  /// would re-refine the clump region.
  void save_state(std::vector<std::uint8_t>& out) const override;
  void restore_state(std::span<const std::uint8_t> blob) override;

 private:
  CoolingParams params_;
  bool refined_ = false;
};

}  // namespace amr
