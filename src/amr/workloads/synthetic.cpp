#include "amr/workloads/synthetic.hpp"

#include <algorithm>

#include "amr/common/check.hpp"

namespace amr {

const char* to_string(CostDistribution dist) {
  switch (dist) {
    case CostDistribution::kExponential: return "exponential";
    case CostDistribution::kGaussian: return "gaussian";
    case CostDistribution::kPowerLaw: return "power-law";
  }
  return "?";
}

std::vector<double> synthetic_costs(std::size_t n, CostDistribution dist,
                                    Rng& rng,
                                    const SyntheticCostParams& params) {
  AMR_CHECK(params.mean > 0.0);
  std::vector<double> costs(n);
  const double cap = params.clamp_max_ratio * params.mean;
  const double floor = 0.01 * params.mean;
  for (std::size_t i = 0; i < n; ++i) {
    double c = 0.0;
    switch (dist) {
      case CostDistribution::kExponential:
        c = rng.exponential(params.mean);
        break;
      case CostDistribution::kGaussian:
        c = rng.normal(params.mean, params.gaussian_cv * params.mean);
        break;
      case CostDistribution::kPowerLaw: {
        // Pareto with mean = x_min * alpha/(alpha-1); solve x_min for the
        // requested mean.
        const double a = params.powerlaw_alpha;
        const double x_min = params.mean * (a - 1.0) / a;
        c = rng.pareto(x_min, a);
        break;
      }
    }
    costs[i] = std::clamp(c, floor, cap);
  }
  return costs;
}

}  // namespace amr
