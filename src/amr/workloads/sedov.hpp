// Sedov blast wave workload (paper §VI, Table I).
//
// The Sedov-Taylor point explosion is self-similar: the shock radius grows
// as R(t) ∝ t^(2/5). The workload sweeps that front across the unit cube,
// refining blocks that intersect the shock shell (steep gradients) and
// coarsening blocks the front has left behind. Per-block compute cost is
// elevated near the front — the paper's physics kernels need more solver
// iterations in steep-gradient regions — with lognormal noise.
#pragma once

#include <array>

#include "amr/common/rng.hpp"
#include "amr/workloads/workload.hpp"

namespace amr {

struct SedovParams {
  std::array<double, 3> center{0.5, 0.5, 0.5};
  double max_radius = 0.85;       ///< front radius at the final step
  std::int64_t total_steps = 100; ///< steps for the front to reach max
  double shell_half_width = 0.06; ///< refinement band around the front
  double coarsen_margin = 2.0;    ///< coarsen beyond margin * half_width
  int max_level = 1;              ///< refinement depth beyond the root grid
  std::int64_t check_period = 5;  ///< steps between refinement checks
                                  ///< (paper: refinement every 5 steps
                                  ///< in the worst case)
  TimeNs base_cost = us(250.0);   ///< quiescent block kernel cost
  double front_boost = 2.5;       ///< cost multiplier peak at the front
  double cost_sigma = 0.04;       ///< cost-bump width (domain units)
  /// Persistent per-block kernel variability. Background blocks carry a
  /// tight lognormal (noise_sigma); a sparse minority ("hot" blocks —
  /// regions whose kernels need extra solver iterations, §II-B) carry a
  /// large multiplier. Persistence across steps is what makes
  /// telemetry-driven cost models predictive; sparsity is what lets
  /// modest CPLX X values capture most of the balance gain (Finding 3).
  double noise_sigma = 0.03;
  double hot_fraction = 0.10;
  double hot_mu = 0.8;        ///< lognormal mu of hot multiplier (~2.2x)
  double hot_sigma = 0.30;
  /// Per-(block, step) jitter on top of the persistent component.
  double jitter_sigma = 0.04;
  std::uint64_t seed = 1;
};

class SedovWorkload final : public Workload {
 public:
  explicit SedovWorkload(SedovParams params) : params_(params) {}

  std::string name() const override { return "sedov3d"; }

  /// Shock front radius at a step: R(t) = R_max * (t/T)^(2/5).
  double front_radius(std::int64_t step) const;

  bool evolve(AmrMesh& mesh, std::int64_t step) override;

  TimeNs block_cost(const AmrMesh& mesh, std::size_t block,
                    std::int64_t step) const override;

  const SedovParams& params() const { return params_; }

 private:
  double distance_to_center(const Aabb& box) const;
  SedovParams params_;
};

}  // namespace amr
