// Workload interface: the physics stand-in.
//
// Per the substitution table in DESIGN.md, the hydrodynamics solver enters
// placement only through (a) where the mesh refines over time and (b) how
// much each block's kernels cost. A Workload supplies exactly those two
// signals. Costs are deterministic functions of (block coordinates, step,
// seed) so they survive SFC renumbering and make runs reproducible.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "amr/common/time.hpp"
#include "amr/mesh/mesh.hpp"

namespace amr {

class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string name() const = 0;

  /// Advance the physical state one step and apply any refinement or
  /// coarsening to the mesh. Returns true if the mesh changed (the driver
  /// must then renumber and redistribute).
  virtual bool evolve(AmrMesh& mesh, std::int64_t step) = 0;

  /// True compute cost of a block at a step (what the simulated kernels
  /// will take). Placement does NOT see this directly — it sees measured
  /// telemetry from previous steps.
  virtual TimeNs block_cost(const AmrMesh& mesh, std::size_t block,
                            std::int64_t step) const = 0;

  /// Checkpoint hooks: append any cross-step internal state as an opaque
  /// blob / adopt it back. Workloads whose costs and refinement are pure
  /// functions of (coords, step, seed) — like Sedov — keep the default
  /// empty implementations.
  virtual void save_state(std::vector<std::uint8_t>& out) const {
    (void)out;
  }
  virtual void restore_state(std::span<const std::uint8_t> blob) {
    (void)blob;
  }
};

}  // namespace amr
