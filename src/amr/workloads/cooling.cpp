#include "amr/workloads/cooling.hpp"

#include <cmath>

#include "amr/mesh/generators.hpp"

namespace amr {

bool CoolingWorkload::evolve(AmrMesh& mesh, std::int64_t step) {
  if (refined_ || step > 0) return false;
  refined_ = true;
  const std::size_t changed = refine_where(
      mesh,
      [&](const Aabb& box) {
        const auto c = box.center();
        const double dx = c[0] - params_.center[0];
        const double dy = c[1] - params_.center[1];
        const double dz = c[2] - params_.center[2];
        return dx * dx + dy * dy + dz * dz <=
               params_.clump_radius * params_.clump_radius;
      },
      params_.max_level);
  return changed > 0;
}

void CoolingWorkload::save_state(std::vector<std::uint8_t>& out) const {
  out.push_back(refined_ ? 1 : 0);
}

void CoolingWorkload::restore_state(std::span<const std::uint8_t> blob) {
  refined_ = !blob.empty() && blob[0] != 0;
}

TimeNs CoolingWorkload::block_cost(const AmrMesh& mesh, std::size_t block,
                                   std::int64_t step) const {
  const auto c = mesh.bounds(block).center();
  const double dx = c[0] - params_.center[0];
  const double dy = c[1] - params_.center[1];
  const double dz = c[2] - params_.center[2];
  const double d = std::sqrt(dx * dx + dy * dy + dz * dz);

  const double rel = d / std::max(params_.clump_radius, 1e-9);
  const double boost =
      params_.clump_boost / (1.0 + rel * params_.falloff);

  const std::uint64_t key =
      hash64(block_key(mesh.block(block)) ^
             hash64(static_cast<std::uint64_t>(step) ^ params_.seed));
  Rng rng(key);
  const double noise = rng.lognormal(0.0, params_.noise_sigma);

  return static_cast<TimeNs>(static_cast<double>(params_.base_cost) *
                             (1.0 + boost) * noise);
}

}  // namespace amr
