// Synthetic block-cost distributions for scalebench (paper §VI-C):
// exponential, Gaussian, and power-law, "with variability bounds chosen to
// create meaningful balancing opportunities while remaining within
// realistic AMR ranges".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "amr/common/rng.hpp"

namespace amr {

enum class CostDistribution : std::uint8_t {
  kExponential,
  kGaussian,
  kPowerLaw,
};

const char* to_string(CostDistribution dist);

struct SyntheticCostParams {
  double mean = 1.0;
  double gaussian_cv = 0.4;     ///< stddev/mean for the Gaussian
  double powerlaw_alpha = 2.2;  ///< Pareto shape (heavier tail < 3)
  double clamp_max_ratio = 20.0;  ///< cap at ratio * mean (AMR-realistic)
};

/// Draw n block costs from a distribution. All draws are positive and
/// capped at clamp_max_ratio * mean.
std::vector<double> synthetic_costs(std::size_t n, CostDistribution dist,
                                    Rng& rng,
                                    const SyntheticCostParams& params = {});

}  // namespace amr
