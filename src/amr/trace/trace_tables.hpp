// Trace -> telemetry Table conversion.
//
// Turns the event stream into the same columnar Tables the rest of the
// observability stack operates on, so the Query engine, detectors, and
// triggers can analyze event-level data with no new analysis code:
//
//   spans(ts, dur_ns, track, cat, a, b)  — completed spans; begin/end
//       pairs (waits, collectives) are matched per track and emitted
//       with their measured duration
//   instants(ts, track, cat, a, b)       — instant + flow events (flow
//       pair id carried in `a` is not preserved; args land in a/b)
//   counters(ts, track, cat, value)      — counter samples
//
// `track` uses the Tracer's encoding (>= 0 rank, kTrackSim, kTrackCrit,
// fabric_track(node)); `cat` is the TraceCat integer value.
#pragma once

#include "amr/telemetry/table.hpp"
#include "amr/trace/tracer.hpp"

namespace amr {

struct TraceTables {
  Table spans;
  Table instants;
  Table counters;
};

/// Convert the tracer's buffered events. Begin/end spans left open at
/// the buffer edge and orphaned ends (ring-buffer drops) are omitted.
TraceTables trace_to_tables(const Tracer& tracer);

}  // namespace amr
