// Minimal validating JSON parser.
//
// Exists so the trace tests and the CI smoke check can assert "the
// exported trace parses as JSON" without an external dependency. It
// validates structure only (RFC 8259 grammar: values, nesting, string
// escapes, number syntax) and builds no DOM.
#pragma once

#include <string_view>

namespace amr {

/// True iff `text` is one syntactically valid JSON value (with optional
/// surrounding whitespace).
bool json_valid(std::string_view text);

}  // namespace amr
