#include "amr/trace/tracer.hpp"

#include "amr/common/check.hpp"

namespace amr {

const char* to_string(TraceCat cat) {
  switch (cat) {
    case TraceCat::kStep: return "step";
    case TraceCat::kCompute: return "compute";
    case TraceCat::kPack: return "pack";
    case TraceCat::kSend: return "send";
    case TraceCat::kRecvWait: return "recv-wait";
    case TraceCat::kSendWait: return "send-wait";
    case TraceCat::kSync: return "sync";
    case TraceCat::kRebalance: return "rebalance";
    case TraceCat::kMsg: return "msg";
    case TraceCat::kFault: return "fault";
    case TraceCat::kFabric: return "fabric";
    case TraceCat::kDes: return "des";
    case TraceCat::kCritPath: return "crit-path";
    case TraceCat::kCount_: break;
  }
  return "?";
}

Tracer::Tracer(TraceConfig config) : config_(config) {
  AMR_CHECK_MSG(config_.capacity > 0, "trace capacity must be positive");
  AMR_CHECK(config_.ranks_per_node > 0);
  ring_.resize(config_.capacity);
}

void Tracer::push(const TraceEvent& ev) {
  ++recorded_;
  if (size_ < ring_.size()) {
    ring_[(begin_ + size_) % ring_.size()] = ev;
    ++size_;
    return;
  }
  // Full: overwrite the oldest event (drop-oldest keeps the most recent
  // window of the run, the part a post-mortem usually needs).
  ring_[begin_] = ev;
  begin_ = (begin_ + 1) % ring_.size();
  ++dropped_;
}

void Tracer::complete(std::int32_t track, TraceCat cat, const char* name,
                      TimeNs ts, TimeNs dur, std::int64_t a,
                      std::int64_t b) {
  if (!wants(cat)) return;
  push(TraceEvent{ts, dur, 0, a, b, name, track,
                  TraceEventType::kComplete, cat});
}

void Tracer::begin(std::int32_t track, TraceCat cat, const char* name,
                   TimeNs ts, std::int64_t a, std::int64_t b) {
  if (!wants(cat)) return;
  push(TraceEvent{ts, 0, 0, a, b, name, track, TraceEventType::kBegin,
                  cat});
}

void Tracer::end(std::int32_t track, TraceCat cat, const char* name,
                 TimeNs ts, std::int64_t a, std::int64_t b) {
  if (!wants(cat)) return;
  push(TraceEvent{ts, 0, 0, a, b, name, track, TraceEventType::kEnd, cat});
}

void Tracer::instant(std::int32_t track, TraceCat cat, const char* name,
                     TimeNs ts, std::int64_t a, std::int64_t b) {
  if (!wants(cat)) return;
  push(TraceEvent{ts, 0, 0, a, b, name, track, TraceEventType::kInstant,
                  cat});
}

void Tracer::counter(std::int32_t track, TraceCat cat, const char* name,
                     TimeNs ts, std::int64_t value) {
  if (!wants(cat)) return;
  push(TraceEvent{ts, 0, 0, value, 0, name, track,
                  TraceEventType::kCounter, cat});
}

std::uint64_t Tracer::flow_begin(std::int32_t track, TraceCat cat,
                                 const char* name, TimeNs ts,
                                 std::int64_t a, std::int64_t b) {
  if (!wants(cat)) return 0;
  const std::uint64_t id = next_flow_id_++;
  push(TraceEvent{ts, 0, id, a, b, name, track,
                  TraceEventType::kFlowBegin, cat});
  return id;
}

void Tracer::flow_end(std::int32_t track, TraceCat cat, const char* name,
                      TimeNs ts, std::uint64_t id, std::int64_t a,
                      std::int64_t b) {
  if (!wants(cat) || id == 0) return;
  push(TraceEvent{ts, 0, id, a, b, name, track, TraceEventType::kFlowEnd,
                  cat});
}

void Tracer::clear() {
  begin_ = 0;
  size_ = 0;
  dropped_ = 0;
  recorded_ = 0;
  next_flow_id_ = 1;
}

const char* Tracer::intern(std::string_view name) {
  return interned_names_.emplace(name).first->c_str();
}

void Tracer::restore(std::span<const TraceEvent> events,
                     std::uint64_t dropped, std::uint64_t recorded,
                     std::uint64_t next_flow_id) {
  AMR_CHECK_MSG(events.size() <= ring_.size(),
                "restored event stream exceeds the ring capacity");
  begin_ = 0;
  size_ = 0;
  for (const TraceEvent& ev : events) {
    TraceEvent owned = ev;
    owned.name = intern(ev.name);
    ring_[size_++] = owned;
  }
  dropped_ = dropped;
  recorded_ = recorded;
  next_flow_id_ = next_flow_id;
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  for_each([&](const TraceEvent& ev) { out.push_back(ev); });
  return out;
}

}  // namespace amr
