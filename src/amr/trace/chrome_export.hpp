// Chrome Trace Event JSON export of a recorded trace.
//
// Produces a trace loadable in Perfetto (ui.perfetto.dev, "Open trace
// file") or chrome://tracing: one "process" per simulated node, one
// "thread" per rank, B/E span pairs for compute/pack/send/wait/sync
// tasks, "s"/"f" flow arrows for P2P messages (send post -> delivery),
// "C" counters for fabric queue occupancy, and two auxiliary tracks —
// the driver's step/rebalance spans and the modeled critical-path
// overlay (paper §IV-D) — under a synthetic "sim" process.
//
// Timestamps are microseconds of simulated DES time (ns precision kept
// as fractions); events are emitted sorted by timestamp, with unmatched
// span ends (a consequence of ring-buffer drops) filtered out and spans
// left open at the buffer edge closed at the final timestamp.
#pragma once

#include <string>

#include "amr/trace/tracer.hpp"

namespace amr {

/// Render the tracer's buffered events as Chrome Trace Event JSON.
std::string chrome_trace_json(const Tracer& tracer);

/// Write chrome_trace_json to a file; false on I/O failure.
bool write_chrome_trace(const Tracer& tracer, const std::string& path);

}  // namespace amr
