// Event-level tracing (paper §IV: the observability layer that aggregate
// profiles could not provide).
//
// The Collector records per-(step, rank) aggregates; the Tracer records
// what happens *inside* a step: which rank stalled, on which message, in
// which order tasks drained. Events are stamped in simulated DES time and
// stored in a bounded ring buffer (drop-oldest, with a dropped-event
// counter) so tracing stays safe on big sweeps. Two exporters consume the
// buffer: chrome_export.hpp writes Perfetto/chrome://tracing JSON, and
// trace_tables.hpp converts the event stream into telemetry Tables so the
// Query engine, detectors, and triggers can analyze event-level data.
//
// Recording is a no-op per category unless the category bit is enabled;
// instrumented layers hold a `Tracer*` that is null when tracing is off,
// so the disabled-path cost is a single pointer test.
#pragma once

#include <cstddef>
#include <cstdint>
#include <set>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "amr/common/time.hpp"

namespace amr {

/// What an event describes. Categories map 1:1 onto the Chrome "cat"
/// field and the i64 `cat` column of the table export.
enum class TraceCat : std::uint8_t {
  kStep = 0,      ///< whole-step spans on the driver track
  kCompute = 1,   ///< block kernel spans
  kPack = 2,      ///< ghost pack/unpack/local-copy spans
  kSend = 3,      ///< isend request spans (post -> sender release)
  kRecvWait = 4,  ///< MPI_Waitall-on-recvs stalls
  kSendWait = 5,  ///< MPI_Waitall-on-sends stalls
  kSync = 6,      ///< blocking collective spans
  kRebalance = 7, ///< placement + migration spans
  kMsg = 8,       ///< P2P message flow arrows (send -> delivery)
  kFault = 9,     ///< fault-injection transitions
  kFabric = 10,   ///< fabric pathologies: ACK recovery, queue occupancy
  kDes = 11,      ///< raw DES dispatch (very high volume; off by default)
  kCritPath = 12, ///< modeled critical-path overlay
  kCount_         // sentinel
};

const char* to_string(TraceCat cat);

constexpr std::uint32_t trace_bit(TraceCat cat) {
  return 1u << static_cast<unsigned>(cat);
}

inline constexpr std::uint32_t kAllTraceCategories =
    (1u << static_cast<unsigned>(TraceCat::kCount_)) - 1;
/// Default mask: everything except per-event DES dispatch, which records
/// one instant per engine event and drowns out the rest.
inline constexpr std::uint32_t kDefaultTraceCategories =
    kAllTraceCategories & ~trace_bit(TraceCat::kDes);

enum class TraceEventType : std::uint8_t {
  kComplete = 0,   ///< span whose duration was known at record time
  kBegin = 1,      ///< open span (waits: the end time is not yet known)
  kEnd = 2,
  kInstant = 3,
  kCounter = 4,    ///< value in `a`
  kFlowBegin = 5,  ///< flow arrow origin; pair id in `id`
  kFlowEnd = 6,    ///< flow arrow target
};

/// One recorded event. `name` must be a string literal (the tracer stores
/// the pointer, not a copy). `a`/`b` are event-defined payloads: bytes,
/// peer ranks, counter values — the exporters carry them through.
struct TraceEvent {
  TimeNs ts = 0;
  TimeNs dur = 0;          ///< kComplete only
  std::uint64_t id = 0;    ///< flow pair id
  std::int64_t a = 0;
  std::int64_t b = 0;
  const char* name = "";
  std::int32_t track = 0;  ///< rank id, or a special track (see Tracer)
  TraceEventType type = TraceEventType::kInstant;
  TraceCat cat = TraceCat::kStep;
};

struct TraceConfig {
  /// Ring-buffer capacity in events; the oldest events are dropped (and
  /// counted) once it fills. ~56 bytes/event.
  std::size_t capacity = 1u << 18;
  /// Rank -> node mapping for the Chrome export's process grouping.
  std::int32_t ranks_per_node = 16;
  std::uint32_t categories = kDefaultTraceCategories;
};

class Tracer {
 public:
  /// Track ids >= 0 are ranks. Negative ids are auxiliary tracks:
  static constexpr std::int32_t kTrackSim = -1;   ///< driver (step spans)
  static constexpr std::int32_t kTrackCrit = -2;  ///< critical-path overlay
  /// Per-node fabric track (NIC/queue counters, ACK events).
  static constexpr std::int32_t fabric_track(std::int32_t node) {
    return -3 - node;
  }
  /// Per-DES-shard track (epoch counters from the sharded engine). Sits
  /// below every fabric track — the fabric range is bounded by the node
  /// count, which never approaches a million in this simulator.
  static constexpr std::int32_t kShardTrackBase = -1'000'003;
  static constexpr std::int32_t shard_track(std::int32_t shard) {
    return kShardTrackBase - shard;
  }
  /// Inverse of shard_track; -1 if `track` is not a shard track.
  static constexpr std::int32_t shard_track_id(std::int32_t track) {
    return track <= kShardTrackBase ? kShardTrackBase - track : -1;
  }
  /// Inverse of fabric_track; -1 if `track` is not a fabric track.
  static constexpr std::int32_t fabric_track_node(std::int32_t track) {
    return track <= -3 && track > kShardTrackBase ? -3 - track : -1;
  }

  explicit Tracer(TraceConfig config = {});

  const TraceConfig& config() const { return config_; }
  bool wants(TraceCat cat) const {
    return (config_.categories & trace_bit(cat)) != 0;
  }

  /// Span with a duration known at record time (DES task dispatch knows
  /// both endpoints up front).
  void complete(std::int32_t track, TraceCat cat, const char* name,
                TimeNs ts, TimeNs dur, std::int64_t a = 0,
                std::int64_t b = 0);
  /// Open/close a span whose end is discovered later (waits, stalls).
  void begin(std::int32_t track, TraceCat cat, const char* name, TimeNs ts,
             std::int64_t a = 0, std::int64_t b = 0);
  void end(std::int32_t track, TraceCat cat, const char* name, TimeNs ts,
           std::int64_t a = 0, std::int64_t b = 0);
  void instant(std::int32_t track, TraceCat cat, const char* name,
               TimeNs ts, std::int64_t a = 0, std::int64_t b = 0);
  void counter(std::int32_t track, TraceCat cat, const char* name,
               TimeNs ts, std::int64_t value);
  /// Start a flow arrow (P2P message); returns the pair id to hand to
  /// flow_end (0 when the category is disabled).
  std::uint64_t flow_begin(std::int32_t track, TraceCat cat,
                           const char* name, TimeNs ts, std::int64_t a = 0,
                           std::int64_t b = 0);
  void flow_end(std::int32_t track, TraceCat cat, const char* name,
                TimeNs ts, std::uint64_t id, std::int64_t a = 0,
                std::int64_t b = 0);

  std::size_t size() const { return size_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t recorded() const { return recorded_; }
  std::uint64_t next_flow_id() const { return next_flow_id_; }
  void clear();

  /// Restore a checkpointed event stream: replaces the buffer contents
  /// and counters. Event names are copied into an arena owned by this
  /// tracer (checkpointed events must not dangle on the original string
  /// literals of another process), so callers may pass transient strings.
  void restore(std::span<const TraceEvent> events, std::uint64_t dropped,
               std::uint64_t recorded, std::uint64_t next_flow_id);

  /// Stable owned copy of `name` (deduplicated); used by restore() and
  /// available to exporters that rebuild events from serialized form.
  const char* intern(std::string_view name);

  /// Visit buffered events oldest-first (recording order).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < size_; ++i)
      fn(ring_[(begin_ + i) % ring_.size()]);
  }

  /// Buffered events oldest-first, copied out.
  std::vector<TraceEvent> snapshot() const;

 private:
  void push(const TraceEvent& ev);

  TraceConfig config_;
  std::vector<TraceEvent> ring_;
  std::size_t begin_ = 0;  ///< index of the oldest event
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t recorded_ = 0;
  std::uint64_t next_flow_id_ = 1;
  /// Owned storage for restored event names (node-stable container: the
  /// const char* handed out must survive rehash/growth).
  std::set<std::string, std::less<>> interned_names_;
};

}  // namespace amr
