#include "amr/trace/chrome_export.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace amr {
namespace {

/// Synthetic pid for the driver/critical-path tracks (real nodes are
/// numbered from 0, so any large value is collision-free in practice).
constexpr std::int64_t kSimPid = 1'000'000;
/// tid offset for per-node fabric tracks (ranks use their own id).
constexpr std::int64_t kFabricTidBase = 2'000'000;

struct TrackIds {
  std::int64_t pid;
  std::int64_t tid;
};

TrackIds map_track(std::int32_t track, std::int32_t ranks_per_node) {
  if (track >= 0) return {track / ranks_per_node, track};
  if (track == Tracer::kTrackSim) return {kSimPid, 0};
  if (track == Tracer::kTrackCrit) return {kSimPid, 1};
  const std::int32_t shard = Tracer::shard_track_id(track);
  if (shard >= 0) return {kSimPid, 2 + shard};
  const std::int32_t node = Tracer::fabric_track_node(track);
  return {node, kFabricTidBase + node};
}

/// One JSON event awaiting emission, in sortable form.
struct Emit {
  TimeNs ts;
  char ph;  // B E i C s f
  const TraceEvent* ev;
};

void append_ts(std::string& out, TimeNs ns) {
  char buf[48];
  // Chrome ts is microseconds; keep ns as fractional digits.
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out += buf;
}

void append_event(std::string& out, const Emit& e,
                  std::int32_t ranks_per_node) {
  const TraceEvent& ev = *e.ev;
  const TrackIds ids = map_track(ev.track, ranks_per_node);
  out += "{\"name\":\"";
  out += ev.name;
  out += "\",\"cat\":\"";
  out += to_string(ev.cat);
  out += "\",\"ph\":\"";
  out += e.ph;
  out += "\",\"ts\":";
  append_ts(out, e.ts);
  out += ",\"pid\":";
  append_i64(out, ids.pid);
  out += ",\"tid\":";
  append_i64(out, ids.tid);
  switch (e.ph) {
    case 'i':
      out += ",\"s\":\"t\"";
      break;
    case 's':
    case 'f':
      out += ",\"id\":";
      append_i64(out, static_cast<std::int64_t>(ev.id));
      if (e.ph == 'f') out += ",\"bp\":\"e\"";
      break;
    default:
      break;
  }
  if (e.ph == 'C') {
    out += ",\"args\":{\"value\":";
    append_i64(out, ev.a);
    out += "}}";
    return;
  }
  out += ",\"args\":{\"a\":";
  append_i64(out, ev.a);
  out += ",\"b\":";
  append_i64(out, ev.b);
  out += "}}";
}

void append_metadata(std::string& out, const char* what, std::int64_t pid,
                     std::int64_t tid, bool with_tid,
                     const std::string& name) {
  out += "{\"name\":\"";
  out += what;
  out += "\",\"ph\":\"M\",\"pid\":";
  append_i64(out, pid);
  if (with_tid) {
    out += ",\"tid\":";
    append_i64(out, tid);
  }
  out += ",\"args\":{\"name\":\"";
  out += name;
  out += "\"}},\n";
}

}  // namespace

std::string chrome_trace_json(const Tracer& tracer) {
  const std::int32_t rpn = tracer.config().ranks_per_node;

  // Materialize emission records: complete spans expand to B/E pairs;
  // everything else maps 1:1. The buffer is recorded in event-dispatch
  // order, not timestamp order (complete spans are stamped at their
  // start), so sort stably by ts — stability keeps record order for
  // ties, which preserves E-before-B at shared boundaries.
  const std::vector<TraceEvent> events = tracer.snapshot();
  std::vector<Emit> emits;
  emits.reserve(events.size() + events.size() / 4);
  for (const TraceEvent& ev : events) {
    switch (ev.type) {
      case TraceEventType::kComplete:
        emits.push_back(Emit{ev.ts, 'B', &ev});
        emits.push_back(Emit{ev.ts + ev.dur, 'E', &ev});
        break;
      case TraceEventType::kBegin:
        emits.push_back(Emit{ev.ts, 'B', &ev});
        break;
      case TraceEventType::kEnd:
        emits.push_back(Emit{ev.ts, 'E', &ev});
        break;
      case TraceEventType::kInstant:
        emits.push_back(Emit{ev.ts, 'i', &ev});
        break;
      case TraceEventType::kCounter:
        emits.push_back(Emit{ev.ts, 'C', &ev});
        break;
      case TraceEventType::kFlowBegin:
        emits.push_back(Emit{ev.ts, 's', &ev});
        break;
      case TraceEventType::kFlowEnd:
        emits.push_back(Emit{ev.ts, 'f', &ev});
        break;
    }
  }
  std::stable_sort(emits.begin(), emits.end(),
                   [](const Emit& a, const Emit& b) { return a.ts < b.ts; });

  // Ring-buffer drops can orphan span ends and flow targets; filter so
  // the output always has matched B/E pairs and paired flows.
  std::unordered_map<std::int32_t, std::int64_t> depth;  // per track
  std::unordered_set<std::uint64_t> open_flows;
  const TimeNs last_ts = emits.empty() ? 0 : emits.back().ts;
  std::vector<const Emit*> kept;
  kept.reserve(emits.size());
  for (const Emit& e : emits) {
    if (e.ph == 'B') ++depth[e.ev->track];
    if (e.ph == 'E') {
      auto it = depth.find(e.ev->track);
      if (it == depth.end() || it->second == 0) continue;  // orphan end
      --it->second;
    }
    if (e.ph == 's') open_flows.insert(e.ev->id);
    if (e.ph == 'f' && !open_flows.contains(e.ev->id))
      continue;  // flow origin was dropped
    kept.push_back(&e);
  }

  // Track/process metadata for every (pid, tid) that appears.
  std::set<std::int64_t> pids;
  std::map<std::pair<std::int64_t, std::int64_t>, std::int32_t> tids;
  for (const Emit* e : kept) {
    const TrackIds ids = map_track(e->ev->track, rpn);
    pids.insert(ids.pid);
    tids.emplace(std::make_pair(ids.pid, ids.tid), e->ev->track);
  }

  std::string out = "{\"traceEvents\":[\n";
  for (const std::int64_t pid : pids) {
    append_metadata(out, "process_name", pid, 0, false,
                    pid == kSimPid ? "sim"
                                   : "node" + std::to_string(pid));
  }
  for (const auto& [key, track] : tids) {
    std::string name;
    if (track >= 0)
      name = "rank " + std::to_string(track);
    else if (track == Tracer::kTrackSim)
      name = "steps";
    else if (track == Tracer::kTrackCrit)
      name = "critical-path";
    else if (Tracer::shard_track_id(track) >= 0)
      name = "des-shard " + std::to_string(Tracer::shard_track_id(track));
    else
      name = "fabric";
    append_metadata(out, "thread_name", key.first, key.second, true, name);
  }

  // Spans still open at the buffer edge get a closing E at the final
  // timestamp so the stream stays balanced.
  std::unordered_map<std::int32_t, std::vector<const Emit*>> open_spans;
  for (std::size_t i = 0; i < kept.size(); ++i) {
    const Emit* e = kept[i];
    if (e->ph == 'B') open_spans[e->ev->track].push_back(e);
    if (e->ph == 'E') open_spans[e->ev->track].pop_back();
    append_event(out, *e, rpn);
    out += ",\n";
  }
  for (const auto& [track, stack] : open_spans) {
    (void)track;
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      Emit closer{last_ts, 'E', (*it)->ev};
      append_event(out, closer, rpn);
      out += ",\n";
    }
  }
  // Strip the trailing comma (metadata guarantees at least one entry
  // whenever any event exists; an empty trace has no comma to strip).
  if (out.size() >= 2 && out[out.size() - 2] == ',') {
    out.erase(out.size() - 2, 1);
  }
  out += "],\n\"displayTimeUnit\":\"ns\",\n\"otherData\":{"
         "\"dropped_events\":";
  append_i64(out, static_cast<std::int64_t>(tracer.dropped()));
  out += ",\"recorded_events\":";
  append_i64(out, static_cast<std::int64_t>(tracer.recorded()));
  out += "}}\n";
  return out;
}

bool write_chrome_trace(const Tracer& tracer, const std::string& path) {
  const std::string json = chrome_trace_json(tracer);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = written == json.size() && std::fclose(f) == 0;
  if (!ok && written != json.size()) std::fclose(f);
  return ok;
}

}  // namespace amr
