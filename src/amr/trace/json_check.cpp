#include "amr/trace/json_check.hpp"

#include <cctype>

namespace amr {
namespace {

/// Recursive-descent validator over a string view. `pos` is the cursor;
/// every parse_* returns false on the first grammar violation.
struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  int depth = 0;
  static constexpr int kMaxDepth = 256;

  bool eof() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }

  void skip_ws() {
    while (!eof() && (text[pos] == ' ' || text[pos] == '\t' ||
                      text[pos] == '\n' || text[pos] == '\r'))
      ++pos;
  }

  bool consume(char c) {
    if (eof() || text[pos] != c) return false;
    ++pos;
    return true;
  }

  bool parse_literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit) return false;
    pos += lit.size();
    return true;
  }

  bool parse_string() {
    if (!consume('"')) return false;
    while (!eof()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (eof()) return false;
        const char e = text[pos++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (eof() || !std::isxdigit(static_cast<unsigned char>(
                             text[pos])))
              return false;
            ++pos;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool parse_digits() {
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
      return false;
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
      ++pos;
    return true;
  }

  bool parse_number() {
    consume('-');
    if (consume('0')) {
      // no leading zeros
    } else if (!parse_digits()) {
      return false;
    }
    if (consume('.') && !parse_digits()) return false;
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos;
      if (!parse_digits()) return false;
    }
    return true;
  }

  bool parse_value() {
    if (++depth > kMaxDepth) return false;
    skip_ws();
    if (eof()) return false;
    bool ok = false;
    switch (peek()) {
      case '{': ok = parse_object(); break;
      case '[': ok = parse_array(); break;
      case '"': ok = parse_string(); break;
      case 't': ok = parse_literal("true"); break;
      case 'f': ok = parse_literal("false"); break;
      case 'n': ok = parse_literal("null"); break;
      default: ok = parse_number(); break;
    }
    --depth;
    return ok;
  }

  bool parse_object() {
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      if (!parse_string()) return false;
      skip_ws();
      if (!consume(':')) return false;
      if (!parse_value()) return false;
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  bool parse_array() {
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      if (!parse_value()) return false;
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }
};

}  // namespace

bool json_valid(std::string_view text) {
  Parser p{text};
  if (!p.parse_value()) return false;
  p.skip_ws();
  return p.eof();
}

}  // namespace amr
