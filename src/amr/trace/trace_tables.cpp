#include "amr/trace/trace_tables.hpp"

#include <unordered_map>
#include <vector>

namespace amr {

TraceTables trace_to_tables(const Tracer& tracer) {
  TraceTables out{
      Table("trace_spans", {{"ts", ColType::kI64},
                            {"dur_ns", ColType::kI64},
                            {"track", ColType::kI64},
                            {"cat", ColType::kI64},
                            {"a", ColType::kI64},
                            {"b", ColType::kI64}}),
      Table("trace_instants", {{"ts", ColType::kI64},
                               {"track", ColType::kI64},
                               {"cat", ColType::kI64},
                               {"a", ColType::kI64},
                               {"b", ColType::kI64}}),
      Table("trace_counters", {{"ts", ColType::kI64},
                               {"track", ColType::kI64},
                               {"cat", ColType::kI64},
                               {"value", ColType::kI64}})};

  const auto span_row = [&](TimeNs ts, TimeNs dur, const TraceEvent& ev,
                            std::int64_t a, std::int64_t b) {
    out.spans.append_row({ts, dur, static_cast<std::int64_t>(ev.track),
                          static_cast<std::int64_t>(ev.cat), a, b});
  };

  // Begin/end pairs match per track: task execution on a rank is
  // sequential, so a simple per-track stack recovers the spans. The `b`
  // payload of the *end* event wins when nonzero (waits learn the
  // releasing sender only at release time).
  std::unordered_map<std::int32_t, std::vector<TraceEvent>> open;
  tracer.for_each([&](const TraceEvent& ev) {
    switch (ev.type) {
      case TraceEventType::kComplete:
        span_row(ev.ts, ev.dur, ev, ev.a, ev.b);
        break;
      case TraceEventType::kBegin:
        open[ev.track].push_back(ev);
        break;
      case TraceEventType::kEnd: {
        auto it = open.find(ev.track);
        if (it == open.end() || it->second.empty()) break;  // orphan
        const TraceEvent b = it->second.back();
        it->second.pop_back();
        span_row(b.ts, ev.ts - b.ts, b, ev.a != 0 ? ev.a : b.a,
                 ev.b != 0 ? ev.b : b.b);
        break;
      }
      case TraceEventType::kInstant:
      case TraceEventType::kFlowBegin:
      case TraceEventType::kFlowEnd:
        out.instants.append_row({ev.ts, static_cast<std::int64_t>(ev.track),
                                 static_cast<std::int64_t>(ev.cat), ev.a,
                                 ev.b});
        break;
      case TraceEventType::kCounter:
        out.counters.append_row({ev.ts, static_cast<std::int64_t>(ev.track),
                                 static_cast<std::int64_t>(ev.cat), ev.a});
        break;
    }
  });
  return out;
}

}  // namespace amr
