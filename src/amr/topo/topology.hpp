// Cluster topology: which ranks share a node.
//
// The evaluation cluster packs 16 ranks per node (paper §IV); message cost
// and the local/remote split in Fig 6c depend only on this rank->node
// mapping. Ranks are packed densely: node = rank / ranks_per_node.
#pragma once

#include <cstdint>
#include <vector>

#include "amr/common/check.hpp"

namespace amr {

class ClusterTopology {
 public:
  ClusterTopology(std::int32_t num_ranks, std::int32_t ranks_per_node)
      : num_ranks_(num_ranks), ranks_per_node_(ranks_per_node) {
    AMR_CHECK(num_ranks > 0 && ranks_per_node > 0);
  }

  std::int32_t num_ranks() const { return num_ranks_; }
  std::int32_t ranks_per_node() const { return ranks_per_node_; }
  std::int32_t num_nodes() const {
    return (num_ranks_ + ranks_per_node_ - 1) / ranks_per_node_;
  }

  std::int32_t node_of(std::int32_t rank) const {
    AMR_CHECK(rank >= 0 && rank < num_ranks_);
    return rank / ranks_per_node_;
  }

  bool same_node(std::int32_t a, std::int32_t b) const {
    return node_of(a) == node_of(b);
  }

  /// Ranks hosted on a node (the last node may be partially filled).
  std::vector<std::int32_t> ranks_on_node(std::int32_t node) const;

 private:
  std::int32_t num_ranks_;
  std::int32_t ranks_per_node_;
};

}  // namespace amr
