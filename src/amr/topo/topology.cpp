#include "amr/topo/topology.hpp"

namespace amr {

std::vector<std::int32_t> ClusterTopology::ranks_on_node(
    std::int32_t node) const {
  AMR_CHECK(node >= 0 && node < num_nodes());
  std::vector<std::int32_t> out;
  const std::int32_t first = node * ranks_per_node_;
  const std::int32_t last =
      std::min(first + ranks_per_node_, num_ranks_);
  out.reserve(static_cast<std::size_t>(last - first));
  for (std::int32_t r = first; r < last; ++r) out.push_back(r);
  return out;
}

}  // namespace amr
