#include "amr/net/fabric.hpp"

#include <algorithm>

#include "amr/common/check.hpp"
#include "amr/trace/tracer.hpp"

namespace amr {

FabricParams FabricParams::tuned() {
  FabricParams p;
  p.shm_queue_slots = 4096;
  p.ack_loss_prob = 0.0;
  p.drain_queue_enabled = true;
  return p;
}

FabricParams FabricParams::untuned() {
  FabricParams p;
  p.shm_queue_slots = 8;
  p.ack_loss_prob = 0.004;
  p.drain_queue_enabled = false;
  return p;
}

Fabric::Fabric(const ClusterTopology& topo, FabricParams params, Rng rng)
    : topo_(topo), params_(params), rng_(rng) {
  AMR_CHECK(params_.shm_queue_slots > 0);
  AMR_CHECK(params_.remote_gbytes_per_sec > 0.0);
  AMR_CHECK(params_.shm_gbytes_per_sec > 0.0);
  reset();
}

void Fabric::reset() {
  stats_ = FabricStats{};
  nic_busy_until_.assign(static_cast<std::size_t>(topo_.num_nodes()), 0);
  shm_slot_free_.assign(static_cast<std::size_t>(topo_.num_nodes()), {});
  for (auto& slots : shm_slot_free_) {
    slots.reserve(static_cast<std::size_t>(params_.shm_queue_slots));
    for (std::int32_t s = 0; s < params_.shm_queue_slots; ++s)
      slots.push(0);
  }
}

void Fabric::enable_sharding() {
  AMR_CHECK_MSG(tracer_ == nullptr && !observer_,
                "fabric sharding excludes tracer/observer taps");
  sharded_ = true;
  const auto nnodes = static_cast<std::size_t>(topo_.num_nodes());
  node_stats_.assign(nnodes, FabricStats{});
  node_rngs_.clear();
  node_rngs_.reserve(nnodes);
  for (std::size_t n = 0; n < nnodes; ++n)
    node_rngs_.push_back(rng_.split(static_cast<std::uint64_t>(n)));
}

FabricStats Fabric::merged_stats() const {
  if (!sharded_) return stats_;
  FabricStats total;
  for (const FabricStats& s : node_stats_) {
    total.remote_msgs += s.remote_msgs;
    total.shm_msgs += s.shm_msgs;
    total.remote_bytes += s.remote_bytes;
    total.shm_bytes += s.shm_bytes;
    total.shm_retries += s.shm_retries;
    total.acks_lost += s.acks_lost;
    total.ack_block_time += s.ack_block_time;
    total.packed_transfers += s.packed_transfers;
    total.coalesced_msgs += s.coalesced_msgs;
  }
  return total;
}

Fabric::State Fabric::export_state() const {
  State st;
  st.rng = rng_.state();
  st.stats = stats_;
  st.nic_busy_until = nic_busy_until_;
  st.shm_slot_free.reserve(shm_slot_free_.size());
  for (const auto& heap : shm_slot_free_) {
    const std::span<const TimeNs> items = heap.items();
    st.shm_slot_free.emplace_back(items.begin(), items.end());
  }
  if (sharded_) {
    st.node_rngs.reserve(node_rngs_.size());
    for (const Rng& r : node_rngs_) st.node_rngs.push_back(r.state());
    st.node_stats = node_stats_;
  }
  return st;
}

void Fabric::import_state(const State& state) {
  AMR_CHECK_MSG(
      state.nic_busy_until.size() ==
              static_cast<std::size_t>(topo_.num_nodes()) &&
          state.shm_slot_free.size() ==
              static_cast<std::size_t>(topo_.num_nodes()),
      "fabric state does not match this topology");
  rng_.set_state(state.rng);
  stats_ = state.stats;
  nic_busy_until_ = state.nic_busy_until;
  for (std::size_t n = 0; n < shm_slot_free_.size(); ++n) {
    AMR_CHECK_MSG(state.shm_slot_free[n].size() ==
                      static_cast<std::size_t>(params_.shm_queue_slots),
                  "fabric state does not match the shm slot count");
    shm_slot_free_[n].restore(state.shm_slot_free[n]);
  }
  if (sharded_) {
    AMR_CHECK_MSG(state.node_rngs.size() == node_rngs_.size() &&
                      state.node_stats.size() == node_stats_.size(),
                  "fabric state does not match sharded mode");
    for (std::size_t n = 0; n < node_rngs_.size(); ++n)
      node_rngs_[n].set_state(state.node_rngs[n]);
    node_stats_ = state.node_stats;
  }
}

TimeNs Fabric::serialize_ns(std::int64_t bytes,
                            double gbytes_per_sec) const {
  return static_cast<TimeNs>(static_cast<double>(bytes) /
                             gbytes_per_sec);  // bytes/GBps = ns
}

TransferTiming Fabric::transfer(std::int32_t src_rank, std::int32_t dst_rank,
                                std::int64_t bytes, TimeNs post_time,
                                std::int32_t msgs) {
  AMR_CHECK_MSG(src_rank != dst_rank,
                "intra-rank copies bypass the fabric");
  AMR_CHECK(msgs >= 1);
  const std::int32_t src_node = topo_.node_of(src_rank);
  const std::int32_t dst_node = topo_.node_of(dst_rank);
  // All mutable state a transfer touches is owned by the source node in
  // sharded mode: its stats bucket, its RNG stream, its NIC busy time,
  // its shm slot heap. That partition is what makes concurrent shard
  // execution race-free.
  FabricStats& stats =
      sharded_ ? node_stats_[static_cast<std::size_t>(src_node)] : stats_;
  Rng& rng =
      sharded_ ? node_rngs_[static_cast<std::size_t>(src_node)] : rng_;
  // Aggregated transfers pay a per-carried-message processing cost beyond
  // the first; zero on the legacy path so msgs == 1 timings are bit-
  // identical to pre-aggregation builds.
  const TimeNs packed_cost = (msgs - 1) * params_.packed_msg_overhead;
  if (msgs > 1) {
    ++stats.packed_transfers;
    stats.coalesced_msgs += msgs - 1;
  }
  TransferTiming t;

  if (src_node == dst_node) {
    // Shared-memory path: grab the earliest-free slot; if no slot is free
    // at post time, spin in retry_delay quanta until one is.
    t.used_shm = true;
    auto& slots = shm_slot_free_[static_cast<std::size_t>(src_node)];
    if (tracer_ != nullptr) {
      // Queue occupancy at post time: the counter the paper's queue-size
      // tuning (Fig 3, right) was flying blind without.
      std::int64_t busy = 0;
      for (const TimeNs free_at : slots.items())
        if (free_at > post_time) ++busy;
      tracer_->counter(Tracer::fabric_track(src_node), TraceCat::kFabric,
                       "shm_queue_busy", post_time, busy);
    }
    TimeNs start = post_time;
    if (slots.top() > post_time) {
      const TimeNs gap = slots.top() - post_time;
      const auto retries = static_cast<std::int32_t>(
          (gap + params_.shm_retry_delay - 1) / params_.shm_retry_delay);
      t.shm_retries = retries;
      stats.shm_retries += retries;
      start = post_time + retries * params_.shm_retry_delay;
      if (tracer_ != nullptr)
        tracer_->instant(Tracer::fabric_track(src_node), TraceCat::kFabric,
                         "shm-retry", post_time, retries, src_rank);
    }
    const TimeNs xfer =
        serialize_ns(bytes, params_.shm_gbytes_per_sec) + packed_cost;
    t.delivery = start + params_.shm_latency + xfer;
    slots.replace_top(t.delivery);  // delivery >= the slot's old free time
    // Sender hands the buffer to the queue as soon as it has a slot.
    t.sender_release = start + params_.post_overhead;
    ++stats.shm_msgs;
    stats.shm_bytes += bytes;
  } else {
    // Remote path: serialize on the source NIC, then fly.
    auto& nic = nic_busy_until_[static_cast<std::size_t>(src_node)];
    const TimeNs begin = std::max(post_time, nic);
    if (tracer_ != nullptr)
      tracer_->counter(Tracer::fabric_track(src_node), TraceCat::kFabric,
                       "nic_backlog_ns", post_time, begin - post_time);
    const TimeNs depart =
        begin + params_.remote_per_msg + packed_cost +
        serialize_ns(bytes, params_.remote_gbytes_per_sec);
    nic = depart;
    const TimeNs jitter =
        params_.remote_jitter > 0
            ? static_cast<TimeNs>(rng.uniform() *
                                  static_cast<double>(params_.remote_jitter))
            : 0;
    t.delivery = depart + params_.remote_latency + jitter;
    t.sender_release = depart;
    if (params_.ack_loss_prob > 0.0 && rng.chance(params_.ack_loss_prob)) {
      t.ack_lost = true;
      ++stats.acks_lost;
      if (tracer_ != nullptr)
        tracer_->instant(Tracer::fabric_track(src_node), TraceCat::kFabric,
                         "ack-lost", depart, src_rank, dst_rank);
      if (!params_.drain_queue_enabled) {
        // PSM-like recovery: the sender's request stays pending until the
        // recovery timer fires, even though the receiver has the data —
        // and the NIC's send queue is blocked behind the recovery, so
        // unrelated traffic from the same node stalls too. This is what
        // decorrelates per-rank comm time from per-rank message volume
        // in the untuned Fig 1a telemetry: the delay lands on whoever
        // shares the NIC, not on the rank that caused it.
        t.sender_release = depart + params_.ack_recovery_delay;
        stats.ack_block_time += params_.ack_recovery_delay;
        nic = depart + params_.ack_recovery_delay;
        if (tracer_ != nullptr)
          tracer_->complete(Tracer::fabric_track(src_node),
                            TraceCat::kFabric, "ack-recovery", depart,
                            params_.ack_recovery_delay, src_rank,
                            dst_rank);
      }
      // With the drain queue, the blocked request is swapped for a fresh
      // one and drained in the background: no sender-visible delay and
      // no head-of-line blocking of the NIC.
    }
    ++stats.remote_msgs;
    stats.remote_bytes += bytes;
  }

  if (observer_) observer_(src_rank, dst_rank, bytes, t);
  return t;
}

}  // namespace amr
