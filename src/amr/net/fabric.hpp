// Simulated interconnect fabric.
//
// Models the two MPI transport paths of the paper's cluster (§IV-B) with
// the tunables whose mis-configuration caused the observed telemetry
// anomalies:
//
//  * Shared-memory path (intra-node): a bounded per-node queue. When the
//    configured slot count is too small for the instantaneous message
//    load, senders spin on retries — the contention that destroyed the
//    work/comm-time correlation in Fig 1a until queue size was tuned
//    (Fig 3, right).
//  * Remote path (inter-node): per-node NIC serialization + base latency
//    + jitter. With probability ack_loss_prob a message's fabric-level ACK
//    goes missing; the default PSM-like recovery path then blocks the
//    *sender's* request for ack_recovery_delay even though the data
//    arrived — the MPI_Wait spikes of Fig 1b. The drain-queue mitigation
//    releases the sender immediately and recovers in the background.
//
// The fabric is a timing oracle with internal state (NIC busy times, shm
// slot occupancy): transfer() returns when the sender's request completes
// and when the message is delivered; the simmpi layer turns those into
// DES events.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "amr/common/dary_heap.hpp"
#include "amr/common/rng.hpp"
#include "amr/common/time.hpp"
#include "amr/topo/topology.hpp"

namespace amr {

class Tracer;

struct FabricParams {
  // Remote (inter-node) path: 40 Gbps-class fabric. Effective per-NIC
  // goodput for small boundary messages sits well below line rate
  // (per-message processing, PSM header/ack overheads).
  TimeNs remote_latency = us(4.0);   ///< base one-way latency
  double remote_gbytes_per_sec = 6.0;  ///< per-NIC byte bandwidth
  /// Per-message NIC processing time (header/ACK handling, descriptor
  /// ring). Boundary exchanges are small-message dominated (paper §II-B:
  /// "latency-sensitive due to small message sizes"), so this — not byte
  /// bandwidth — is what congests when placement goes remote.
  TimeNs remote_per_msg = us(1.6);
  TimeNs remote_jitter = us(0.6);    ///< uniform [0, jitter) per message

  // Shared-memory (intra-node) path.
  TimeNs shm_latency = us(0.5);
  double shm_gbytes_per_sec = 8.0;
  std::int32_t shm_queue_slots = 64;  ///< per-node queue depth (the knob)
  TimeNs shm_retry_delay = us(8.0);  ///< backoff when all slots are busy

  // ACK pathology (Fig 1b).
  double ack_loss_prob = 0.0;
  TimeNs ack_recovery_delay = ms(2.0);
  bool drain_queue_enabled = false;   ///< our mitigation (§IV-B)

  // Fixed software overhead of posting a send/recv.
  TimeNs post_overhead = us(0.3);

  /// Per-coalesced-message processing cost inside an aggregated transfer
  /// (per-block header walk + descriptor on both the shm and remote
  /// paths), charged for every logical message beyond the first. This is
  /// what keeps per-destination aggregation a modeled trade rather than
  /// an accounting trick: a packed transfer still pays for each message
  /// it carries, just far less than the full per-message latency, NIC
  /// per_msg, and queue-slot payments it avoids. Never charged on the
  /// legacy path (msgs == 1).
  TimeNs packed_msg_overhead = us(0.25);

  /// Eager/rendezvous-style packing threshold in mean bytes per logical
  /// message for the given path: coalescing a message into an aggregate
  /// saves its per-message launch cost (NIC per_msg + post on the remote
  /// path, latency + post on shm) minus the packed_msg_overhead it now
  /// pays, while delaying delivery by the extra serialization of the
  /// bytes it rides with. Break-even is where serialization time of the
  /// mean payload equals the per-message saving — below it, packing wins.
  /// A pure function of the params, so adaptive plans are deterministic.
  std::int64_t pack_threshold(bool same_node) const {
    const TimeNs launch_ns =
        (same_node ? shm_latency : remote_per_msg) + post_overhead;
    const TimeNs saved_ns = launch_ns - packed_msg_overhead;
    if (saved_ns <= 0) return 0;
    const double gbps =
        same_node ? shm_gbytes_per_sec : remote_gbytes_per_sec;
    return static_cast<std::int64_t>(static_cast<double>(saved_ns) * gbps);
  }

  /// Paper-cluster defaults after the tuning exercise: large shm queue,
  /// no ACK pathology (drain queue active as belt-and-braces).
  static FabricParams tuned();

  /// The untuned initial configuration: small shm queue, ACK loss with
  /// sender-blocking recovery.
  static FabricParams untuned();
};

/// Outcome of one message transfer.
struct TransferTiming {
  TimeNs sender_release = 0;  ///< sender's request completes (MPI_Wait)
  TimeNs delivery = 0;        ///< data available at the receiver
  bool used_shm = false;
  std::int32_t shm_retries = 0;
  bool ack_lost = false;
};

/// Aggregate fabric counters (per run).
struct FabricStats {
  std::int64_t remote_msgs = 0;
  std::int64_t shm_msgs = 0;
  std::int64_t remote_bytes = 0;
  std::int64_t shm_bytes = 0;
  std::int64_t shm_retries = 0;
  std::int64_t acks_lost = 0;
  TimeNs ack_block_time = 0;  ///< total sender time lost to ACK recovery
  std::int64_t packed_transfers = 0;  ///< transfers carrying msgs > 1
  std::int64_t coalesced_msgs = 0;    ///< sum of (msgs - 1) over transfers
};

class Fabric {
 public:
  Fabric(const ClusterTopology& topo, FabricParams params, Rng rng);

  /// Compute timings for a message posted at `post_time` from src to dst
  /// (ranks; must differ — intra-rank copies bypass the fabric). Advances
  /// internal NIC/queue state; calls must be issued in nondecreasing
  /// post_time order per source node for the NIC model to be physical
  /// (the DES guarantees this). `msgs` > 1 marks an aggregated transfer
  /// carrying that many logical messages: it occupies one queue slot /
  /// NIC serialization window and pays latency once, plus
  /// (msgs - 1) * packed_msg_overhead of per-message processing.
  TransferTiming transfer(std::int32_t src_rank, std::int32_t dst_rank,
                          std::int64_t bytes, TimeNs post_time,
                          std::int32_t msgs = 1);

  const FabricStats& stats() const { return stats_; }
  /// Run counters regardless of mode: the global accumulator in the
  /// sequential case, the per-node counters summed in node order when
  /// sharding is enabled.
  FabricStats merged_stats() const;
  const FabricParams& params() const { return params_; }
  const ClusterTopology& topology() const { return topo_; }

  /// Switch to per-node RNG streams and per-node stats counters so that
  /// transfer() touches only src-node-owned state — the data partition
  /// that lets the sharded DES call the fabric from concurrent shard
  /// threads (shards own disjoint node ranges). Per-node streams are
  /// split off the root stream by node id, so every jitter/ACK draw
  /// depends only on the node and that node's own transfer order — both
  /// invariant under the shard count. Must be called before the first
  /// transfer; the mode is part of the run's fingerprint (sequential and
  /// sharded runs draw different jitter and are not comparable).
  /// Tracer and observer must stay unset in sharded mode (they funnel
  /// concurrent shards into shared sinks).
  void enable_sharding();
  bool sharded() const { return sharded_; }

  /// Optional per-message observer (telemetry taps for Fig 1/3 benches).
  using Observer = std::function<void(std::int32_t src, std::int32_t dst,
                                      std::int64_t bytes,
                                      const TransferTiming&)>;
  void set_observer(Observer obs) { observer_ = std::move(obs); }

  /// Attach an event tracer (nullptr detaches): per-node queue-occupancy
  /// counters, shm retry instants, and ACK-loss/recovery events on the
  /// node fabric tracks.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  /// Reset dynamic state (NIC busy times, shm slots, stats) for a fresh
  /// measurement window without reconstructing the object.
  void reset();

  /// Full dynamic state for checkpoint/restart: the jitter RNG position,
  /// run counters, and the NIC/shm-queue occupancy model. Restoring it
  /// makes every subsequent transfer() bit-identical to an uninterrupted
  /// fabric.
  struct State {
    Rng::State rng;
    FabricStats stats;
    std::vector<TimeNs> nic_busy_until;              ///< per node
    std::vector<std::vector<TimeNs>> shm_slot_free;  ///< per node, heap order
    /// Sharded mode only (empty otherwise): per-node stream positions
    /// and counters. Node-indexed, so state round-trips across runs with
    /// different shard counts.
    std::vector<Rng::State> node_rngs;
    std::vector<FabricStats> node_stats;
  };
  State export_state() const;
  /// Sizes must match this fabric's topology and slot count.
  void import_state(const State& state);

 private:
  TimeNs serialize_ns(std::int64_t bytes, double gbytes_per_sec) const;

  const ClusterTopology& topo_;
  FabricParams params_;
  Rng rng_;
  Tracer* tracer_ = nullptr;
  FabricStats stats_;
  bool sharded_ = false;
  std::vector<Rng> node_rngs_;          // per node (sharded mode)
  std::vector<FabricStats> node_stats_; // per node (sharded mode)
  std::vector<TimeNs> nic_busy_until_;  // per node
  // Per-node slot free-times as a min-heap: transfer() only ever needs
  // the earliest-free slot, and its new free time only grows, so a
  // replace-top keeps selection O(log slots) instead of the linear scan
  // that dominated sedov_sim wall-clock with the tuned 4096-slot queue.
  // Slot identity never affects timing (only the multiset of free times
  // does), so heap order is observably identical to first-min selection.
  std::vector<DaryHeap<TimeNs>> shm_slot_free_;  // per node, per slot
  Observer observer_;
};

}  // namespace amr
