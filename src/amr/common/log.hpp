// Minimal leveled logger for the library; benches and examples use it for
// progress reporting. Thread-unsafe by design (the simulator is
// single-threaded and deterministic).
#pragma once

#include <cstdio>
#include <string>

namespace amr {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are suppressed.
void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style logging. Prefer the AMR_LOG_* macros which skip argument
/// evaluation when the level is suppressed.
void log_message(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace amr

#define AMR_LOG_AT(lvl, ...)                       \
  do {                                             \
    if (static_cast<int>(lvl) >=                   \
        static_cast<int>(::amr::log_level()))      \
      ::amr::log_message((lvl), __VA_ARGS__);      \
  } while (false)

#define AMR_LOG_DEBUG(...) AMR_LOG_AT(::amr::LogLevel::kDebug, __VA_ARGS__)
#define AMR_LOG_INFO(...) AMR_LOG_AT(::amr::LogLevel::kInfo, __VA_ARGS__)
#define AMR_LOG_WARN(...) AMR_LOG_AT(::amr::LogLevel::kWarn, __VA_ARGS__)
#define AMR_LOG_ERROR(...) AMR_LOG_AT(::amr::LogLevel::kError, __VA_ARGS__)
