#include "amr/common/rng.hpp"

#include <bit>
#include <cmath>
#include <numbers>

#include "amr/common/check.hpp"

namespace amr {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash64(std::uint64_t value) { return splitmix64(value); }

Rng::Rng(std::uint64_t seed) {
  // xoshiro256** must not be seeded all-zero; splitmix64 guarantees a
  // well-mixed nonzero state from any seed.
  for (auto& s : s_) s = splitmix64(seed);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  AMR_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 == 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::exponential(double mean) {
  AMR_CHECK(mean > 0.0);
  double u = uniform();
  while (u == 0.0) u = uniform();
  return -mean * std::log(u);
}

double Rng::pareto(double x_min, double alpha) {
  AMR_CHECK(x_min > 0.0 && alpha > 0.0);
  double u = uniform();
  while (u == 0.0) u = uniform();
  return x_min / std::pow(u, 1.0 / alpha);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

bool Rng::chance(double p) { return uniform() < p; }

Rng Rng::split(std::uint64_t salt) {
  std::uint64_t mix = s_[0] ^ std::rotl(s_[3], 13) ^ salt;
  return Rng(splitmix64(mix));
}

Rng::State Rng::state() const {
  State st;
  for (int i = 0; i < 4; ++i) st.s[i] = s_[i];
  st.cached_normal = cached_normal_;
  st.has_cached_normal = has_cached_normal_;
  return st;
}

void Rng::set_state(const State& state) {
  for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
  cached_normal_ = state.cached_normal;
  has_cached_normal_ = state.has_cached_normal;
}

}  // namespace amr
