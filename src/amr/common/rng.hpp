// Deterministic random number generation.
//
// Every stochastic component of the simulator (cost noise, network jitter,
// fault onset, mesh generation) draws from an amr::Rng seeded explicitly,
// so runs are reproducible and experiments can report averages over
// numbered seeds. The generator is xoshiro256**, seeded via splitmix64.
#pragma once

#include <cstdint>

namespace amr {

/// splitmix64 step; used for seeding and for cheap stateless hashing.
std::uint64_t splitmix64(std::uint64_t& state);

/// Stateless 64-bit mix of a value (one splitmix64 round).
std::uint64_t hash64(std::uint64_t value);

/// xoshiro256** PRNG with explicit seeding and distribution helpers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_int(std::uint64_t n);

  /// Standard normal via Box-Muller (cached second variate).
  double normal();

  /// Normal with mean/stddev.
  double normal(double mean, double stddev);

  /// Exponential with the given mean (mean = 1/lambda).
  double exponential(double mean);

  /// Pareto (power-law) with scale x_min and shape alpha (> 0).
  double pareto(double x_min, double alpha);

  /// Lognormal parameterized by the underlying normal's mu/sigma.
  double lognormal(double mu, double sigma);

  /// Bernoulli draw.
  bool chance(double p);

  /// Split off an independent stream (hash of current state + salt).
  Rng split(std::uint64_t salt);

  /// Full generator state for checkpoint/restart: restoring it resumes
  /// the stream at exactly the next draw (including the Box-Muller cache,
  /// so normal() sequences survive a mid-pair checkpoint).
  struct State {
    std::uint64_t s[4] = {0, 0, 0, 0};
    double cached_normal = 0.0;
    bool has_cached_normal = false;
  };
  State state() const;
  void set_state(const State& state);

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace amr
