#include "amr/common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "amr/common/check.hpp"

namespace amr {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::sample_variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::cv() const {
  return mean() != 0.0 ? stddev() / mean() : 0.0;
}

double percentile(std::span<const double> values, double q) {
  if (values.empty()) return 0.0;
  AMR_CHECK(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double mean(std::span<const double> values) {
  RunningStats s;
  for (double v : values) s.add(v);
  return s.mean();
}

double stddev(std::span<const double> values) {
  RunningStats s;
  for (double v : values) s.add(v);
  return s.stddev();
}

double pearson(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size() || x.empty()) return 0.0;
  RunningStats sx;
  RunningStats sy;
  for (double v : x) sx.add(v);
  for (double v : y) sy.add(v);
  if (sx.stddev() == 0.0 || sy.stddev() == 0.0) return 0.0;
  double cov = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    cov += (x[i] - sx.mean()) * (y[i] - sy.mean());
  }
  cov /= static_cast<double>(x.size());
  return cov / (sx.stddev() * sy.stddev());
}

double imbalance_factor(std::span<const double> values) {
  if (values.empty()) return 0.0;
  RunningStats s;
  for (double v : values) s.add(v);
  return s.mean() != 0.0 ? s.max() / s.mean() : 0.0;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  AMR_CHECK(hi > lo && bins > 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto bin = static_cast<std::size_t>((x - lo_) / bin_width_);
    bin = std::min(bin, counts_.size() - 1);
    ++counts_[bin];
  }
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + static_cast<double>(bin) * bin_width_;
}

double Histogram::bin_hi(std::size_t bin) const {
  return bin_lo(bin) + bin_width_;
}

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::string out;
  char buf[64];
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto bar =
        static_cast<std::size_t>(counts_[b] * width / peak);
    std::snprintf(buf, sizeof(buf), "[%10.3g, %10.3g) %8zu |", bin_lo(b),
                  bin_hi(b), counts_[b]);
    out += buf;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace amr
