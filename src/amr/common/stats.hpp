// Descriptive statistics used throughout telemetry analysis and the
// benchmark harnesses: streaming moments (Welford), percentiles, Pearson
// correlation, and fixed-width histograms.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace amr {

/// Streaming mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Population variance (divides by n).
  double variance() const;
  /// Sample variance (divides by n-1); 0 if fewer than 2 samples.
  double sample_variance() const;
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }
  /// Coefficient of variation (stddev / mean); 0 if mean is 0.
  double cv() const;

  /// Raw accumulator image for checkpoint/restart: restoring it and
  /// continuing to add() produces bit-identical moments to an
  /// uninterrupted accumulation.
  struct Moments {
    std::size_t n = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double min = 0.0;
    double max = 0.0;
    double sum = 0.0;
  };
  Moments moments() const { return {n_, mean_, m2_, min_, max_, sum_}; }
  static RunningStats from_moments(const Moments& m) {
    RunningStats s;
    s.n_ = m.n;
    s.mean_ = m.mean;
    s.m2_ = m.m2;
    s.min_ = m.min;
    s.max_ = m.max;
    s.sum_ = m.sum;
    return s;
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile of a sample, q in [0, 1], linear interpolation between order
/// statistics. Copies and sorts internally; returns 0 for empty input.
double percentile(std::span<const double> values, double q);

double mean(std::span<const double> values);
double stddev(std::span<const double> values);

/// Pearson correlation coefficient; returns 0 if either side is constant
/// or inputs are empty/mismatched in length.
double pearson(std::span<const double> x, std::span<const double> y);

/// Max/mean ratio (load imbalance factor); returns 0 for empty input.
double imbalance_factor(std::span<const double> values);

/// Fixed-width histogram over [lo, hi) with extra under/overflow bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t bin) const { return counts_[bin]; }
  std::size_t bins() const { return counts_.size(); }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;

  /// Render as an ASCII bar chart (for bench output).
  std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace amr
