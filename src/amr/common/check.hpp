// Invariant checking that stays enabled in Release builds.
//
// The simulator's correctness depends on invariants (event ordering, octree
// 2:1 balance, request lifecycles) whose violation would silently corrupt
// measured results rather than crash. AMR_CHECK therefore never compiles
// out; it costs a predictable branch and is kept off hot inner loops.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <source_location>

namespace amr {

[[noreturn]] inline void check_failed(const char* expr,
                                      const char* msg,
                                      const std::source_location loc) {
  std::fprintf(stderr, "AMR_CHECK failed: (%s) %s\n  at %s:%u in %s\n", expr,
               msg != nullptr ? msg : "", loc.file_name(),
               static_cast<unsigned>(loc.line()), loc.function_name());
  std::abort();
}

}  // namespace amr

#define AMR_CHECK(expr)                                               \
  do {                                                                \
    if (!(expr)) [[unlikely]]                                         \
      ::amr::check_failed(#expr, nullptr,                             \
                          std::source_location::current());           \
  } while (false)

#define AMR_CHECK_MSG(expr, msg)                                      \
  do {                                                                \
    if (!(expr)) [[unlikely]]                                         \
      ::amr::check_failed(#expr, (msg),                               \
                          std::source_location::current());           \
  } while (false)
