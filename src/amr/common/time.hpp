// Simulated-time representation.
//
// All simulator timestamps are integer nanoseconds. Integer time makes
// discrete-event ordering exact and runs bit-identical across platforms,
// which the telemetry tests rely on.
#pragma once

#include <cstdint>

namespace amr {

/// Simulated time in nanoseconds since the start of the run.
using TimeNs = std::int64_t;

inline constexpr TimeNs kNsPerUs = 1'000;
inline constexpr TimeNs kNsPerMs = 1'000'000;
inline constexpr TimeNs kNsPerSec = 1'000'000'000;

constexpr TimeNs us(double v) { return static_cast<TimeNs>(v * kNsPerUs); }
constexpr TimeNs ms(double v) { return static_cast<TimeNs>(v * kNsPerMs); }
constexpr TimeNs sec(double v) { return static_cast<TimeNs>(v * kNsPerSec); }

constexpr double to_us(TimeNs t) { return static_cast<double>(t) / kNsPerUs; }
constexpr double to_ms(TimeNs t) { return static_cast<double>(t) / kNsPerMs; }
constexpr double to_sec(TimeNs t) {
  return static_cast<double>(t) / kNsPerSec;
}

}  // namespace amr
