// Flat d-ary heaps for the simulator's hot loops.
//
// A d-ary implicit heap trades a slightly more expensive sift-down
// (d comparisons per level) for a tree 1/log2(d) as deep and laid out in
// one contiguous vector — which is what the DES event queue and LPT's
// rank-load selection actually pay for: cache misses on the root-to-leaf
// path, not comparisons. D=4 keeps each child group inside one cache
// line for small elements and measures fastest for both users.
//
// Both heaps resolve comparator ties deterministically as long as Less
// imposes a strict total order (callers include a sequence number or
// rank id in the key); the heap itself never breaks a tie.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

namespace amr {

/// Min-heap under Less (Less(a,b) == "a orders before b"). Same contract
/// as a std::priority_queue with the comparison inverted, but flat,
/// d-ary, and with an in-place replace_top for pop-modify-push cycles.
template <typename T, unsigned D = 4, typename Less = std::less<T>>
class DaryHeap {
  static_assert(D >= 2, "heap arity must be at least 2");

 public:
  DaryHeap() = default;
  explicit DaryHeap(Less less) : less_(std::move(less)) {}

  bool empty() const { return slots_.empty(); }
  std::size_t size() const { return slots_.size(); }
  void reserve(std::size_t n) { slots_.reserve(n); }
  void clear() { slots_.clear(); }

  const T& top() const { return slots_.front(); }

  void push(T value) {
    slots_.push_back(std::move(value));
    sift_up(slots_.size() - 1);
  }

  void pop() {
    slots_.front() = std::move(slots_.back());
    slots_.pop_back();
    if (!slots_.empty()) sift_down(0);
  }

  /// Replace the minimum and restore the heap in one sift-down — the
  /// pop();push() idiom without the extra root-to-leaf traversal.
  void replace_top(T value) {
    slots_.front() = std::move(value);
    sift_down(0);
  }

  /// All elements in heap (not sorted) order, for whole-container scans
  /// and checkpointing (restore() accepts this layout back verbatim).
  std::span<const T> items() const { return slots_; }

  /// Adopt a storage image previously captured via items(). The caller
  /// guarantees the vector already satisfies the heap invariant (any
  /// snapshot of a live heap does).
  void restore(std::vector<T> slots) { slots_ = std::move(slots); }

 private:
  // Hole-insertion sifts: the displaced element is held in a register
  // and written exactly once, so each level costs one move, not a swap.
  void sift_up(std::size_t i) {
    T value = std::move(slots_[i]);
    while (i > 0) {
      const std::size_t parent = (i - 1) / D;
      if (!less_(value, slots_[parent])) break;
      slots_[i] = std::move(slots_[parent]);
      i = parent;
    }
    slots_[i] = std::move(value);
  }

  void sift_down(std::size_t i) {
    T value = std::move(slots_[i]);
    const std::size_t n = slots_.size();
    for (;;) {
      const std::size_t first_child = i * D + 1;
      if (first_child >= n) break;
      const std::size_t last_child = std::min(first_child + D, n);
      std::size_t best = first_child;
      for (std::size_t c = first_child + 1; c < last_child; ++c)
        if (less_(slots_[c], slots_[best])) best = c;
      if (!less_(slots_[best], value)) break;
      slots_[i] = std::move(slots_[best]);
      i = best;
    }
    slots_[i] = std::move(value);
  }

  std::vector<T> slots_;
  Less less_;
};

/// Min-heap over (key, id) pairs where only the minimum is ever updated
/// — the exact access pattern of LPT's "assign block to least-loaded
/// rank, grow its load" loop. Ties are broken by ascending id so the
/// minimum is always unique and results are placement-deterministic.
template <unsigned D = 4>
class TopUpdateMinHeap {
 public:
  struct Entry {
    double key;
    std::int32_t id;
    friend bool operator<(const Entry& a, const Entry& b) {
      return a.key != b.key ? a.key < b.key : a.id < b.id;
    }
  };

  /// Rebuild as id set `ids`, all keys zero.
  void reset(std::size_t count, const std::int32_t* ids) {
    heap_.clear();
    heap_.reserve(count);
    // Zero keys with ascending-id pushes: already a valid heap (any
    // prefix is heap-ordered because ties resolve by id).
    for (std::size_t i = 0; i < count; ++i)
      heap_.push(Entry{0.0, ids[i]});
  }

  bool empty() const { return heap_.empty(); }
  std::int32_t top_id() const { return heap_.top().id; }
  double top_key() const { return heap_.top().key; }

  /// Grow the minimum's key and restore the heap (one sift-down).
  void add_to_top(double delta) {
    Entry e = heap_.top();
    e.key += delta;
    heap_.replace_top(e);
  }

 private:
  DaryHeap<Entry, D> heap_;
};

}  // namespace amr
