// Fixed-size work-stealing thread pool for the sweep runtime.
//
// Each worker owns a deque: it pops its own work LIFO (cache-warm) and
// steals FIFO from victims when dry, so large tasks submitted early get
// stolen first and the tail of a sweep stays balanced. Tasks are
// closures with no return channel — callers hand out result slots
// up front (see par/sweep.hpp), which is what keeps sweep output
// deterministic regardless of which thread runs what.
//
// The pool is deliberately small-surface: submit() + wait_idle(), no
// futures, no task graph. Independent sweep trials need nothing more,
// and the simple shape keeps the determinism argument airtight.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace amr {

class ThreadPool {
 public:
  /// Spawn `threads` workers (clamped to >= 1).
  explicit ThreadPool(int threads);

  /// Drains nothing: outstanding tasks are completed before teardown.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task (round-robin across worker deques). Thread-safe;
  /// tasks may themselves submit.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished. The caller's thread
  /// does not execute tasks.
  void wait_idle();

  /// Run fn(0..n-1) across the pool and block until all n calls return —
  /// the sharded DES's per-epoch barrier. Unlike wait_idle this waits on
  /// exactly these n tasks (a private latch), so it composes with other
  /// outstanding submissions, and the pool persists across epochs
  /// instead of being torn down and respawned per barrier. The caller's
  /// thread does not execute tasks. Not reentrant from inside a task.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  int size() const { return static_cast<int>(workers_.size()); }

  /// Worker count for --jobs=0 ("use the machine"): hardware
  /// concurrency, at least 1.
  static int hardware_jobs();

 private:
  struct Worker {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void worker_loop(std::size_t self);
  bool try_pop(std::size_t self, std::function<void()>& out);

  std::vector<std::unique_ptr<Worker>> queues_;
  std::vector<std::thread> workers_;

  std::mutex state_mu_;
  std::condition_variable work_cv_;  ///< workers: new work or shutdown
  std::condition_variable idle_cv_;  ///< waiters: in_flight hit zero
  std::uint64_t in_flight_ = 0;      ///< queued + executing tasks
  std::uint64_t next_queue_ = 0;     ///< round-robin submission cursor
  /// Tasks pushed to a deque but not yet popped. Signed: a task can be
  /// stolen between submit's push and its counter increment, briefly
  /// driving this negative. Workers sleep on pending_ <= 0; because the
  /// increment happens under state_mu_ before the notify, a sleep
  /// decision can never race past a submission (no lost wakeups).
  std::int64_t pending_ = 0;
  bool shutdown_ = false;
};

}  // namespace amr
