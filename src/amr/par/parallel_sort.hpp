// Deterministic parallel sort for the placement hot paths.
//
// Chunk-sorts on the pool, then merges adjacent runs pairwise (also on
// the pool) until one run remains. The comparator must impose a strict
// TOTAL order — every caller includes a unique id in the key — so the
// sorted sequence is mathematically unique and the result is identical
// to std::sort with the same comparator, independent of pool size,
// scheduling, or whether a pool is supplied at all. That property is
// what lets the placement engine sort on worker threads while keeping
// its byte-identity contract with the sequential reference path.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "amr/par/thread_pool.hpp"

namespace amr {

/// Sort `v` under `less` (a strict total order). Null pool or small
/// inputs fall back to std::sort; the cutover threshold only affects
/// wall-clock, never the result.
template <typename T, typename Less>
void parallel_sort(ThreadPool* pool, std::vector<T>& v, Less less) {
  constexpr std::size_t kMinParallel = 4096;
  if (pool == nullptr || pool->size() < 2 || v.size() < kMinParallel) {
    std::sort(v.begin(), v.end(), less);
    return;
  }
  const auto nruns = static_cast<std::size_t>(pool->size());
  const std::size_t run = (v.size() + nruns - 1) / nruns;
  std::vector<std::size_t> bounds;  // run boundaries, ascending
  for (std::size_t at = 0; at < v.size(); at += run)
    bounds.push_back(at);
  bounds.push_back(v.size());

  pool->parallel_for(bounds.size() - 1, [&](std::size_t i) {
    std::sort(v.begin() + static_cast<std::ptrdiff_t>(bounds[i]),
              v.begin() + static_cast<std::ptrdiff_t>(bounds[i + 1]),
              less);
  });

  // Pairwise merge rounds: each round halves the run count; merges are
  // on disjoint ranges, so they run concurrently.
  while (bounds.size() > 2) {
    const std::size_t pairs = (bounds.size() - 1) / 2;
    pool->parallel_for(pairs, [&](std::size_t p) {
      const std::size_t lo = bounds[2 * p];
      const std::size_t mid = bounds[2 * p + 1];
      const std::size_t hi = bounds[2 * p + 2];
      std::inplace_merge(v.begin() + static_cast<std::ptrdiff_t>(lo),
                         v.begin() + static_cast<std::ptrdiff_t>(mid),
                         v.begin() + static_cast<std::ptrdiff_t>(hi),
                         less);
    });
    std::vector<std::size_t> next;
    for (std::size_t i = 0; i < bounds.size(); i += 2) next.push_back(bounds[i]);
    if (next.back() != bounds.back()) next.push_back(bounds.back());
    bounds = std::move(next);
  }
}

}  // namespace amr
