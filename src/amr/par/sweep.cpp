#include "amr/par/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "amr/common/check.hpp"
#include "amr/common/rng.hpp"
#include "amr/par/thread_pool.hpp"

namespace amr {
namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Minimal JSON string escape (quotes, backslashes, control chars).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::uint64_t sweep_task_seed(std::uint64_t base_seed,
                              std::uint64_t task_index) {
  // Two mix rounds decorrelate adjacent indices under any base seed.
  return hash64(hash64(base_seed) ^ (task_index * 0x9e3779b97f4a7c15ULL));
}

std::size_t Sweep::add(std::string label,
                       std::function<std::string()> task) {
  AMR_CHECK_MSG(!ran_, "Sweep::add after run()");
  results_.push_back(SweepResult{std::move(label), {}, 0.0});
  tasks_.push_back(std::move(task));
  return tasks_.size() - 1;
}

void Sweep::run() {
  AMR_CHECK_MSG(!ran_, "Sweep::run called twice");
  ran_ = true;
  const double t0 = now_ms();
  auto run_one = [this](std::size_t i) {
    const double s = now_ms();
    results_[i].output = tasks_[i]();
    results_[i].wall_ms = now_ms() - s;
  };
  if (jobs_ <= 1) {
    for (std::size_t i = 0; i < tasks_.size(); ++i) run_one(i);
  } else {
    // Oversubscribing cores is a pure loss for CPU-bound trials
    // (BENCH_par_sweep.json measured 0.713x with jobs=4 on one CPU);
    // clamp and tell the user rather than silently running slower.
    const int hw = ThreadPool::hardware_jobs();
    if (jobs_ > hw) {
      std::fprintf(stderr,
                   "sweep: --jobs=%d exceeds hardware concurrency (%d); "
                   "clamping to %d\n",
                   jobs_, hw, hw);
      jobs_ = hw;
    }
    const int threads =
        std::min<std::size_t>(static_cast<std::size_t>(jobs_),
                              std::max<std::size_t>(1, tasks_.size()));
    ThreadPool pool(static_cast<int>(threads));
    for (std::size_t i = 0; i < tasks_.size(); ++i)
      pool.submit([&run_one, i] { run_one(i); });
    pool.wait_idle();
  }
  wall_ms_ = now_ms() - t0;
  tasks_.clear();  // release captured state
}

void Sweep::print(std::FILE* out) const {
  AMR_CHECK_MSG(ran_, "Sweep::print before run()");
  for (const SweepResult& r : results_)
    std::fwrite(r.output.data(), 1, r.output.size(), out);
  std::fflush(out);
}

double Sweep::task_ms_sum() const {
  double sum = 0.0;
  for (const SweepResult& r : results_) sum += r.wall_ms;
  return sum;
}

bool Sweep::write_json(const std::string& path,
                       const std::string& name) const {
  std::FILE* f =
      path == "-" ? stdout : std::fopen(path.c_str(), "a");
  if (f == nullptr) return false;
  std::fprintf(f,
               "{\"sweep\":\"%s\",\"jobs\":%d,\"tasks\":%zu,"
               "\"wall_ms\":%.3f,\"task_ms_sum\":%.3f,\"speedup\":%.3f,"
               "\"per_task\":[",
               json_escape(name).c_str(), jobs_, results_.size(),
               wall_ms_, task_ms_sum(),
               wall_ms_ > 0.0 ? task_ms_sum() / wall_ms_ : 0.0);
  for (std::size_t i = 0; i < results_.size(); ++i)
    std::fprintf(f, "%s{\"label\":\"%s\",\"ms\":%.3f}",
                 i == 0 ? "" : ",",
                 json_escape(results_[i].label).c_str(),
                 results_[i].wall_ms);
  std::fprintf(f, "]}\n");
  if (f != stdout) return std::fclose(f) == 0;
  std::fflush(f);
  return true;
}

}  // namespace amr
