#include "amr/par/thread_pool.hpp"

#include <algorithm>

namespace amr {

int ThreadPool::hardware_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(1, static_cast<int>(hw));
}

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(1, threads);
  queues_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    queues_.push_back(std::make_unique<Worker>());
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    workers_.emplace_back(
        [this, i] { worker_loop(static_cast<std::size_t>(i)); });
}

ThreadPool::~ThreadPool() {
  wait_idle();
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  std::size_t target;
  {
    // in_flight_ must rise before the push: a worker could otherwise
    // pop and finish the task first and sink in_flight_ below zero.
    std::lock_guard<std::mutex> lock(state_mu_);
    target = next_queue_++ % queues_.size();
    ++in_flight_;
  }
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(task));
  }
  {
    // pending_ rises under state_mu_ *after* the push and *before* the
    // notify. A worker deciding to sleep holds state_mu_ while it
    // checks pending_, so it either sees this increment (and goes back
    // to popping) or is already inside wait() when the notify lands —
    // the notify can never fall into a recheck-to-wait window.
    std::lock_guard<std::mutex> lock(state_mu_);
    ++pending_;
  }
  work_cv_.notify_one();
}

bool ThreadPool::try_pop(std::size_t self, std::function<void()>& out) {
  // Own deque first, newest-first: the task whose inputs are still warm.
  {
    Worker& own = *queues_[self];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      out = std::move(own.tasks.back());
      own.tasks.pop_back();
      return true;
    }
  }
  // Steal oldest-first from the others, starting after self so steals
  // spread instead of hammering worker 0.
  for (std::size_t k = 1; k < queues_.size(); ++k) {
    Worker& victim = *queues_[(self + k) % queues_.size()];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.tasks.empty()) {
      out = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  for (;;) {
    std::function<void()> task;
    if (try_pop(self, task)) {
      {
        std::lock_guard<std::mutex> lock(state_mu_);
        --pending_;
      }
      task();
      std::lock_guard<std::mutex> lock(state_mu_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
      continue;
    }
    // Sleep only while no pushed task is unclaimed. The predicate runs
    // under state_mu_, the same mutex submit bumps pending_ under, so
    // the sleep decision is atomic against submission: pending_ > 0
    // implies some deque holds a task (it was pushed before the bump),
    // and a bump after our check finds us already in wait() where its
    // notify reaches us.
    std::unique_lock<std::mutex> lock(state_mu_);
    work_cv_.wait(lock, [this] { return shutdown_ || pending_ > 0; });
    if (shutdown_) return;
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(state_mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Private latch, same counted-push/predicate-wait shape as the
  // pending_ fix in submit(): `remaining` falls under `mu` before the
  // notify, and the waiter's predicate runs under `mu`, so the final
  // decrement either precedes the wait (predicate true immediately) or
  // finds the waiter parked where the notify reaches it. The notify
  // stays INSIDE the lock: the latch lives on the waiter's stack, and a
  // post-unlock notify could touch the cv after the woken waiter has
  // already returned and destroyed it (TSan: notify vs ~Latch).
  struct Latch {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t remaining;
  };
  Latch latch{.remaining = n};
  for (std::size_t i = 0; i < n; ++i) {
    submit([&latch, &fn, i] {
      fn(i);
      std::lock_guard<std::mutex> lock(latch.mu);
      if (--latch.remaining == 0) latch.cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(latch.mu);
  latch.cv.wait(lock, [&latch] { return latch.remaining == 0; });
}

}  // namespace amr
