#include "amr/par/thread_pool.hpp"

#include <algorithm>

namespace amr {

int ThreadPool::hardware_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(1, static_cast<int>(hw));
}

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(1, threads);
  queues_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    queues_.push_back(std::make_unique<Worker>());
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    workers_.emplace_back(
        [this, i] { worker_loop(static_cast<std::size_t>(i)); });
}

ThreadPool::~ThreadPool() {
  wait_idle();
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  std::size_t target;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    target = next_queue_++ % queues_.size();
    ++in_flight_;
  }
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

bool ThreadPool::try_pop(std::size_t self, std::function<void()>& out) {
  // Own deque first, newest-first: the task whose inputs are still warm.
  {
    Worker& own = *queues_[self];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      out = std::move(own.tasks.back());
      own.tasks.pop_back();
      return true;
    }
  }
  // Steal oldest-first from the others, starting after self so steals
  // spread instead of hammering worker 0.
  for (std::size_t k = 1; k < queues_.size(); ++k) {
    Worker& victim = *queues_[(self + k) % queues_.size()];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.tasks.empty()) {
      out = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  for (;;) {
    std::function<void()> task;
    if (try_pop(self, task)) {
      task();
      std::lock_guard<std::mutex> lock(state_mu_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
      continue;
    }
    std::unique_lock<std::mutex> lock(state_mu_);
    if (shutdown_) return;
    // Re-check under the lock: a submit between our failed scan and here
    // would otherwise be sleepable-through.
    bool any = false;
    for (const auto& q : queues_) {
      std::lock_guard<std::mutex> qlock(q->mu);
      if (!q->tasks.empty()) {
        any = true;
        break;
      }
    }
    if (any) continue;
    work_cv_.wait(lock);
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(state_mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

}  // namespace amr
