// Deterministic parallel sweep harness.
//
// The paper's exhibits are sweeps — policy x scale x distribution x
// trial — of *independent, self-contained* trials (each builds its own
// mesh, Rng, Simulation). Sweep fans those trials out across a
// work-stealing pool and gathers results in submission order, so the
// concatenated output of a --jobs=N run is byte-identical to --jobs=1:
//
//   Sweep sweep(flags.jobs());
//   for (auto& cfg : grid)
//     sweep.add(cfg.label(), [cfg] { return run_trial(cfg); });
//   sweep.run();
//   sweep.print();                       // submission order, always
//
// The determinism contract has three legs, all mechanical:
//   1. tasks return their text instead of printing (no interleaving);
//   2. results are gathered by task index, not completion order;
//   3. any randomness inside a task derives from an explicit seed
//      (sweep_task_seed or the bench's own hash64 scheme), never from
//      global state.
// Wall-clock *measurements* made inside tasks are exempt: they vary run
// to run even serially, and benches that print them are documented as
// reproducible modulo timing fields (most gate them behind --timing).
//
// jobs <= 1 runs every task inline on the calling thread — no pool, no
// threads, the exact serial loop — so the serial baseline is the code
// path itself, not a simulation of it.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace amr {

/// Stateless per-task seed stream: mixes the base seed with the task
/// index so trials stay reproducible under any schedule and any
/// jobs count.
std::uint64_t sweep_task_seed(std::uint64_t base_seed,
                              std::uint64_t task_index);

struct SweepResult {
  std::string label;
  std::string output;   ///< the task's returned text
  double wall_ms = 0.0; ///< task execution time (informational)
};

class Sweep {
 public:
  /// @param jobs  worker threads; <= 1 means inline serial execution.
  ///              0 is treated as "serial" too — resolve "use the
  ///              machine" with ThreadPool::hardware_jobs() first.
  explicit Sweep(int jobs) : jobs_(jobs) {}

  int jobs() const { return jobs_; }

  /// Register a task. Returns its submission index. Tasks must be
  /// independent of each other; they run concurrently when jobs > 1.
  std::size_t add(std::string label, std::function<std::string()> task);

  /// Execute every task. Safe to call once; results() and print() are
  /// valid afterwards.
  void run();

  /// Results in submission order.
  const std::vector<SweepResult>& results() const { return results_; }

  /// Write every task's output to `out` in submission order.
  void print(std::FILE* out = stdout) const;

  /// End-to-end wall time of run(), ms.
  double wall_ms() const { return wall_ms_; }

  /// Sum of per-task wall times, ms — the serial-equivalent cost the
  /// pool amortized.
  double task_ms_sum() const;

  /// Append a machine-readable record of this sweep to `path` (JSON
  /// object per call; "-" writes to stdout). Timing fields are the
  /// nondeterministic channel — stdout stays byte-stable, the JSON
  /// carries the perf trajectory. Returns false on I/O failure.
  bool write_json(const std::string& path, const std::string& name) const;

 private:
  int jobs_;
  std::vector<std::function<std::string()>> tasks_;
  std::vector<SweepResult> results_;
  double wall_ms_ = 0.0;
  bool ran_ = false;
};

}  // namespace amr
