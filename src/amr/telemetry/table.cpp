#include "amr/telemetry/table.hpp"

#include <algorithm>
#include <cstdio>

#include "amr/common/check.hpp"

namespace amr {

Table::Table(std::string name, std::vector<ColumnDef> defs)
    : name_(std::move(name)), defs_(std::move(defs)),
      i64_cols_(defs_.size()), f64_cols_(defs_.size()) {
  AMR_CHECK_MSG(!defs_.empty(), "table needs at least one column");
  for (std::size_t i = 0; i < defs_.size(); ++i)
    for (std::size_t j = i + 1; j < defs_.size(); ++j)
      AMR_CHECK_MSG(defs_[i].name != defs_[j].name,
                    "duplicate column name");
}

std::int32_t Table::col_index(std::string_view name) const {
  for (std::size_t i = 0; i < defs_.size(); ++i)
    if (defs_[i].name == name) return static_cast<std::int32_t>(i);
  return -1;
}

void Table::append_row(std::initializer_list<CellValue> cells) {
  append_row(std::span<const CellValue>(cells.begin(), cells.size()));
}

void Table::append_row(std::span<const CellValue> cells) {
  AMR_CHECK_MSG(cells.size() == defs_.size(), "row arity mismatch");
  for (std::size_t c = 0; c < cells.size(); ++c) {
    if (defs_[c].type == ColType::kI64) {
      AMR_CHECK_MSG(std::holds_alternative<std::int64_t>(cells[c]),
                    "double value into i64 column");
      i64_cols_[c].push_back(std::get<std::int64_t>(cells[c]));
    } else if (std::holds_alternative<double>(cells[c])) {
      f64_cols_[c].push_back(std::get<double>(cells[c]));
    } else {
      f64_cols_[c].push_back(
          static_cast<double>(std::get<std::int64_t>(cells[c])));
    }
  }
  ++rows_;
}

std::size_t Table::checked_col(std::string_view name, ColType type) const {
  const std::int32_t idx = col_index(name);
  AMR_CHECK_MSG(idx >= 0, "no such column");
  AMR_CHECK_MSG(defs_[static_cast<std::size_t>(idx)].type == type,
                "column type mismatch");
  return static_cast<std::size_t>(idx);
}

std::span<const std::int64_t> Table::i64(std::string_view col) const {
  return i64_cols_[checked_col(col, ColType::kI64)];
}

std::span<const double> Table::f64(std::string_view col) const {
  return f64_cols_[checked_col(col, ColType::kF64)];
}

std::span<const std::int64_t> Table::i64(std::size_t col) const {
  AMR_CHECK(defs_[col].type == ColType::kI64);
  return i64_cols_[col];
}

std::span<const double> Table::f64(std::size_t col) const {
  AMR_CHECK(defs_[col].type == ColType::kF64);
  return f64_cols_[col];
}

double Table::value(std::size_t col, std::size_t row) const {
  AMR_CHECK(col < defs_.size() && row < rows_);
  return defs_[col].type == ColType::kI64
             ? static_cast<double>(i64_cols_[col][row])
             : f64_cols_[col][row];
}

std::int64_t Table::ivalue(std::size_t col, std::size_t row) const {
  AMR_CHECK(col < defs_.size() && row < rows_);
  AMR_CHECK(defs_[col].type == ColType::kI64);
  return i64_cols_[col][row];
}

void Table::reserve(std::size_t rows) {
  for (std::size_t col = 0; col < defs_.size(); ++col) {
    if (defs_[col].type == ColType::kI64)
      i64_cols_[col].reserve(rows);
    else
      f64_cols_[col].reserve(rows);
  }
}

void Table::clear() {
  for (auto& c : i64_cols_) {
    c.clear();
    c.shrink_to_fit();
  }
  for (auto& c : f64_cols_) {
    c.clear();
    c.shrink_to_fit();
  }
  rows_ = 0;
}

std::size_t Table::bytes_used() const {
  std::size_t bytes = 0;
  for (const auto& c : i64_cols_) bytes += c.capacity() * sizeof(std::int64_t);
  for (const auto& c : f64_cols_) bytes += c.capacity() * sizeof(double);
  return bytes;
}

void Table::column_stats(std::size_t col, double& min, double& max) const {
  min = 0.0;
  max = 0.0;
  if (rows_ == 0) return;
  min = value(col, 0);
  max = min;
  for (std::size_t r = 1; r < rows_; ++r) {
    const double v = value(col, r);
    min = std::min(min, v);
    max = std::max(max, v);
  }
}

std::string Table::format(std::size_t max_rows) const {
  std::string out = "table " + name_ + " (" + std::to_string(rows_) +
                    " rows)\n";
  for (const auto& def : defs_) {
    out += def.name;
    out += '\t';
  }
  out += '\n';
  char buf[64];
  const std::size_t limit = std::min(rows_, max_rows);
  for (std::size_t r = 0; r < limit; ++r) {
    for (std::size_t c = 0; c < defs_.size(); ++c) {
      if (defs_[c].type == ColType::kI64)
        std::snprintf(buf, sizeof(buf), "%lld\t",
                      static_cast<long long>(i64_cols_[c][r]));
      else
        std::snprintf(buf, sizeof(buf), "%.6g\t", f64_cols_[c][r]);
      out += buf;
    }
    out += '\n';
  }
  if (limit < rows_) out += "...\n";
  return out;
}

}  // namespace amr
