#include "amr/telemetry/detectors.hpp"

#include <algorithm>
#include <cmath>

#include "amr/common/check.hpp"
#include "amr/common/stats.hpp"

namespace amr {
namespace {

double median_of(std::span<const double> values) {
  return percentile(values, 0.5);
}

}  // namespace

ThrottleReport detect_throttling(std::span<const double> per_rank_compute,
                                 const ClusterTopology& topo,
                                 double factor) {
  AMR_CHECK(per_rank_compute.size() ==
            static_cast<std::size_t>(topo.num_ranks()));
  ThrottleReport report;
  report.median_compute = median_of(per_rank_compute);
  if (report.median_compute <= 0.0) return report;

  RunningStats flagged_stats;
  for (std::size_t r = 0; r < per_rank_compute.size(); ++r) {
    if (per_rank_compute[r] > factor * report.median_compute) {
      report.flagged_ranks.push_back(static_cast<std::int32_t>(r));
      flagged_stats.add(per_rank_compute[r]);
    }
  }
  if (flagged_stats.count() > 0)
    report.flagged_mean_inflation =
        flagged_stats.mean() / report.median_compute;

  std::vector<std::int32_t> per_node(
      static_cast<std::size_t>(topo.num_nodes()), 0);
  for (const std::int32_t r : report.flagged_ranks)
    ++per_node[static_cast<std::size_t>(topo.node_of(r))];
  for (std::int32_t node = 0; node < topo.num_nodes(); ++node) {
    const auto resident =
        static_cast<std::int32_t>(topo.ranks_on_node(node).size());
    if (per_node[static_cast<std::size_t>(node)] * 2 >= resident &&
        per_node[static_cast<std::size_t>(node)] > 0)
      report.flagged_nodes.push_back(node);
  }
  return report;
}

SpikeReport detect_spikes(std::span<const double> series, double k) {
  SpikeReport report;
  if (series.empty()) return report;
  report.median = median_of(series);
  std::vector<double> deviations(series.size());
  for (std::size_t i = 0; i < series.size(); ++i)
    deviations[i] = std::abs(series[i] - report.median);
  report.mad = 1.4826 * median_of(deviations);

  const double threshold = report.median + k * std::max(report.mad, 1e-12);
  RunningStats with;
  RunningStats without;
  double spike_sum = 0.0;
  double total_sum = 0.0;
  for (std::size_t i = 0; i < series.size(); ++i) {
    with.add(series[i]);
    total_sum += series[i];
    if (series[i] > threshold) {
      report.spike_indices.push_back(i);
      spike_sum += series[i];
    } else {
      without.add(series[i]);
    }
  }
  report.mean_with_spikes = with.mean();
  report.mean_without_spikes = without.mean();
  report.spike_mass = total_sum > 0.0 ? spike_sum / total_sum : 0.0;
  return report;
}

CorrelationReport correlation_report(std::span<const double> work,
                                     std::span<const double> time) {
  CorrelationReport report;
  if (work.size() != time.size() || work.empty()) return report;
  report.n = work.size();
  report.pearson = pearson(work, time);

  // Quartile profile over work.
  std::vector<std::size_t> order(work.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return work[a] < work[b];
  });
  for (int q = 0; q < 4; ++q) {
    const std::size_t lo = order.size() * static_cast<std::size_t>(q) / 4;
    const std::size_t hi =
        order.size() * static_cast<std::size_t>(q + 1) / 4;
    RunningStats s;
    for (std::size_t i = lo; i < hi; ++i) s.add(time[order[i]]);
    report.quartile_means[static_cast<std::size_t>(q)] = s.mean();
  }
  return report;
}

}  // namespace amr
