#include "amr/telemetry/query.hpp"

#include <algorithm>
#include <unordered_map>

#include "amr/common/check.hpp"
#include "amr/common/rng.hpp"
#include "amr/common/stats.hpp"

namespace amr {

const char* to_string(Agg agg) {
  switch (agg) {
    case Agg::kCount: return "count";
    case Agg::kSum: return "sum";
    case Agg::kMean: return "mean";
    case Agg::kMin: return "min";
    case Agg::kMax: return "max";
    case Agg::kStddev: return "stddev";
    case Agg::kP50: return "p50";
    case Agg::kP95: return "p95";
    case Agg::kP99: return "p99";
  }
  return "?";
}

Query::Query(const Table& table) : table_(table) {
  rows_.resize(table.num_rows());
  for (std::size_t r = 0; r < rows_.size(); ++r) rows_[r] = r;
}

Query& Query::filter_i64(std::string_view col,
                         const std::function<bool(std::int64_t)>& pred) {
  const std::int32_t idx = table_.col_index(col);
  AMR_CHECK_MSG(idx >= 0, "filter: no such column");
  const auto c = static_cast<std::size_t>(idx);
  std::vector<std::size_t> kept;
  kept.reserve(rows_.size());
  for (const std::size_t r : rows_)
    if (pred(table_.ivalue(c, r))) kept.push_back(r);
  rows_ = std::move(kept);
  return *this;
}

Query& Query::filter(std::string_view col,
                     const std::function<bool(double)>& pred) {
  const std::int32_t idx = table_.col_index(col);
  AMR_CHECK_MSG(idx >= 0, "filter: no such column");
  const auto c = static_cast<std::size_t>(idx);
  std::vector<std::size_t> kept;
  kept.reserve(rows_.size());
  for (const std::size_t r : rows_)
    if (pred(table_.value(c, r))) kept.push_back(r);
  rows_ = std::move(kept);
  return *this;
}

Query& Query::sort_by(std::string_view col, bool descending) {
  const std::int32_t idx = table_.col_index(col);
  AMR_CHECK_MSG(idx >= 0, "sort_by: no such column");
  const auto c = static_cast<std::size_t>(idx);
  std::stable_sort(rows_.begin(), rows_.end(),
                   [&](std::size_t a, std::size_t b) {
                     const double va = table_.value(c, a);
                     const double vb = table_.value(c, b);
                     return descending ? va > vb : va < vb;
                   });
  return *this;
}

Query& Query::limit(std::size_t n) {
  if (rows_.size() > n) rows_.resize(n);
  return *this;
}

std::vector<double> Query::values(std::string_view col) const {
  const std::int32_t idx = table_.col_index(col);
  AMR_CHECK_MSG(idx >= 0, "values: no such column");
  const auto c = static_cast<std::size_t>(idx);
  std::vector<double> out;
  out.reserve(rows_.size());
  for (const std::size_t r : rows_) out.push_back(table_.value(c, r));
  return out;
}

Table Query::run() const {
  Table out(table_.name() + "#filtered", table_.schema());
  std::vector<CellValue> row(table_.num_cols());
  for (const std::size_t r : rows_) {
    for (std::size_t c = 0; c < table_.num_cols(); ++c) {
      if (table_.col_type(c) == ColType::kI64)
        row[c] = table_.ivalue(c, r);
      else
        row[c] = table_.value(c, r);
    }
    out.append_row(row);
  }
  return out;
}

GroupedQuery Query::group_by(std::vector<std::string> keys) {
  return GroupedQuery(*this, std::move(keys));
}

GroupedQuery::GroupedQuery(const Query& query,
                           std::vector<std::string> keys)
    : query_(query), keys_(std::move(keys)) {
  AMR_CHECK_MSG(!keys_.empty(), "group_by needs at least one key");
}

Table GroupedQuery::agg(std::vector<AggSpec> specs) const {
  const Table& src = query_.table_;
  std::vector<std::size_t> key_cols;
  for (const auto& k : keys_) {
    const std::int32_t idx = src.col_index(k);
    AMR_CHECK_MSG(idx >= 0, "group_by: no such column");
    AMR_CHECK_MSG(src.col_type(static_cast<std::size_t>(idx)) ==
                      ColType::kI64,
                  "group_by keys must be i64 columns");
    key_cols.push_back(static_cast<std::size_t>(idx));
  }
  std::vector<std::size_t> val_cols;
  for (const auto& s : specs) {
    if (s.agg == Agg::kCount) {
      val_cols.push_back(0);  // unused
      continue;
    }
    const std::int32_t idx = src.col_index(s.column);
    AMR_CHECK_MSG(idx >= 0, "agg: no such column");
    val_cols.push_back(static_cast<std::size_t>(idx));
  }

  // Group rows by key tuple; deterministic first-appearance order.
  struct Group {
    std::vector<std::int64_t> key;
    std::vector<std::vector<double>> values;  // one per spec
  };
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> buckets;
  std::vector<Group> groups;

  for (const std::size_t r : query_.rows_) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    std::vector<std::int64_t> key;
    key.reserve(key_cols.size());
    for (const std::size_t c : key_cols) {
      const std::int64_t v = src.ivalue(c, r);
      key.push_back(v);
      h = hash64(h ^ static_cast<std::uint64_t>(v));
    }
    Group* group = nullptr;
    for (const std::size_t gi : buckets[h]) {
      if (groups[gi].key == key) {
        group = &groups[gi];
        break;
      }
    }
    if (group == nullptr) {
      buckets[h].push_back(groups.size());
      groups.push_back(Group{std::move(key), {}});
      group = &groups.back();
      group->values.resize(specs.size());
    }
    for (std::size_t s = 0; s < specs.size(); ++s) {
      if (specs[s].agg == Agg::kCount)
        continue;  // derived from any column's size; track via first spec
      group->values[s].push_back(src.value(val_cols[s], r));
    }
    // kCount groups still need a size; reuse a 1-element push.
    for (std::size_t s = 0; s < specs.size(); ++s)
      if (specs[s].agg == Agg::kCount) group->values[s].push_back(1.0);
  }

  std::vector<ColumnDef> defs;
  for (const auto& k : keys_) defs.push_back({k, ColType::kI64});
  for (const auto& s : specs) defs.push_back({s.as, ColType::kF64});
  Table out(src.name() + "#agg", std::move(defs));

  std::vector<CellValue> row(keys_.size() + specs.size());
  for (const auto& g : groups) {
    for (std::size_t k = 0; k < g.key.size(); ++k) row[k] = g.key[k];
    for (std::size_t s = 0; s < specs.size(); ++s) {
      const auto& vals = g.values[s];
      double v = 0.0;
      switch (specs[s].agg) {
        case Agg::kCount: v = static_cast<double>(vals.size()); break;
        case Agg::kSum: {
          for (const double x : vals) v += x;
          break;
        }
        case Agg::kMean: v = mean(vals); break;
        case Agg::kMin:
          v = vals.empty() ? 0.0
                           : *std::min_element(vals.begin(), vals.end());
          break;
        case Agg::kMax:
          v = vals.empty() ? 0.0
                           : *std::max_element(vals.begin(), vals.end());
          break;
        case Agg::kStddev: v = stddev(vals); break;
        case Agg::kP50: v = percentile(vals, 0.50); break;
        case Agg::kP95: v = percentile(vals, 0.95); break;
        case Agg::kP99: v = percentile(vals, 0.99); break;
      }
      row[keys_.size() + s] = v;
    }
    out.append_row(row);
  }
  return out;
}


Table join(const Table& left, const Table& right,
           const std::vector<std::string>& keys,
           const std::string& right_prefix) {
  AMR_CHECK_MSG(!keys.empty(), "join needs at least one key column");
  std::vector<std::size_t> lkeys;
  std::vector<std::size_t> rkeys;
  for (const auto& k : keys) {
    const std::int32_t li = left.col_index(k);
    const std::int32_t ri = right.col_index(k);
    AMR_CHECK_MSG(li >= 0 && ri >= 0, "join key missing from a side");
    AMR_CHECK_MSG(left.col_type(static_cast<std::size_t>(li)) ==
                          ColType::kI64 &&
                      right.col_type(static_cast<std::size_t>(ri)) ==
                          ColType::kI64,
                  "join keys must be i64 columns");
    lkeys.push_back(static_cast<std::size_t>(li));
    rkeys.push_back(static_cast<std::size_t>(ri));
  }
  auto is_key = [&](const std::vector<std::size_t>& cols,
                    std::size_t c) {
    return std::find(cols.begin(), cols.end(), c) != cols.end();
  };

  // Output schema: keys, left payload, right payload.
  std::vector<ColumnDef> defs;
  for (const auto& k : keys) defs.push_back({k, ColType::kI64});
  std::vector<std::size_t> lpayload;
  for (std::size_t c = 0; c < left.num_cols(); ++c) {
    if (is_key(lkeys, c)) continue;
    defs.push_back(left.schema()[c]);
    lpayload.push_back(c);
  }
  std::vector<std::size_t> rpayload;
  for (std::size_t c = 0; c < right.num_cols(); ++c) {
    if (is_key(rkeys, c)) continue;
    ColumnDef def = right.schema()[c];
    for (const auto& existing : defs)
      if (existing.name == def.name) {
        def.name = right_prefix + def.name;
        break;
      }
    defs.push_back(std::move(def));
    rpayload.push_back(c);
  }
  Table out(left.name() + "*" + right.name(), std::move(defs));

  // Build the hash side (right).
  auto key_hash = [](std::span<const std::int64_t> key) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const std::int64_t v : key)
      h = hash64(h ^ static_cast<std::uint64_t>(v));
    return h;
  };
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> buckets;
  std::vector<std::vector<std::int64_t>> rkey_rows(right.num_rows());
  for (std::size_t r = 0; r < right.num_rows(); ++r) {
    auto& key = rkey_rows[r];
    key.reserve(rkeys.size());
    for (const std::size_t c : rkeys) key.push_back(right.ivalue(c, r));
    buckets[key_hash(key)].push_back(r);
  }

  std::vector<CellValue> row(out.num_cols());
  std::vector<std::int64_t> lkey(lkeys.size());
  for (std::size_t lr = 0; lr < left.num_rows(); ++lr) {
    for (std::size_t i = 0; i < lkeys.size(); ++i)
      lkey[i] = left.ivalue(lkeys[i], lr);
    const auto it = buckets.find(key_hash(lkey));
    if (it == buckets.end()) continue;
    for (const std::size_t rr : it->second) {
      if (rkey_rows[rr] != lkey) continue;
      std::size_t at = 0;
      for (const std::int64_t v : lkey) row[at++] = v;
      for (const std::size_t c : lpayload) {
        if (left.col_type(c) == ColType::kI64)
          row[at++] = left.ivalue(c, lr);
        else
          row[at++] = left.value(c, lr);
      }
      for (const std::size_t c : rpayload) {
        if (right.col_type(c) == ColType::kI64)
          row[at++] = right.ivalue(c, rr);
        else
          row[at++] = right.value(c, rr);
      }
      out.append_row(row);
    }
  }
  return out;
}

}  // namespace amr
