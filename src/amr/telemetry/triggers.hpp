// Programmable telemetry triggers (paper §IV-C: "we wanted programmable
// telemetry triggers based on reconstructed application state").
//
// A trigger rule watches one execution phase, aggregates its per-rank
// durations within each timestep (the reconstructed application state is
// the step/rank structure), and fires when the aggregate crosses a
// threshold. Rules run over collected tables after — or, in-situ, during
// — a run, and emit structured events suitable for further querying.
//
// Example: fire when any step's p95 sync time exceeds 2 ms —
//   TelemetryTriggers triggers;
//   triggers.add_rule({"sync-spike", Phase::kSync, Agg::kP95, ms(2.0)});
//   for (const TriggerEvent& e : triggers.evaluate(collector.phases()))
//     ...
#pragma once

#include <string>
#include <vector>

#include "amr/common/time.hpp"
#include "amr/telemetry/collector.hpp"
#include "amr/telemetry/query.hpp"

namespace amr {

struct TriggerRule {
  std::string name;
  Phase phase = Phase::kSync;
  Agg agg = Agg::kMax;       ///< cross-rank aggregate within a step
  double threshold_ns = 0.0;  ///< fire when aggregate > threshold
};

struct TriggerEvent {
  std::string rule;
  std::int64_t step = 0;
  double value_ns = 0.0;  ///< the aggregate that crossed the threshold
};

class TelemetryTriggers {
 public:
  void add_rule(TriggerRule rule);
  std::size_t num_rules() const { return rules_.size(); }

  /// Evaluate all rules over a phases table (schema: step, rank, phase,
  /// dur_ns). Events are ordered by rule registration, then step.
  std::vector<TriggerEvent> evaluate(const Table& phases) const;

 private:
  std::vector<TriggerRule> rules_;
};

}  // namespace amr
