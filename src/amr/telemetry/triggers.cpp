#include "amr/telemetry/triggers.hpp"

#include "amr/common/check.hpp"

namespace amr {

void TelemetryTriggers::add_rule(TriggerRule rule) {
  AMR_CHECK_MSG(!rule.name.empty(), "trigger rule needs a name");
  AMR_CHECK(rule.threshold_ns >= 0.0);
  rules_.push_back(std::move(rule));
}

std::vector<TriggerEvent> TelemetryTriggers::evaluate(
    const Table& phases) const {
  std::vector<TriggerEvent> events;
  for (const TriggerRule& rule : rules_) {
    const auto wanted = static_cast<std::int64_t>(rule.phase);
    const Table per_step =
        Query(phases)
            .filter_i64("phase",
                        [wanted](std::int64_t p) { return p == wanted; })
            .group_by({"step"})
            .agg({{"dur_ns", rule.agg, "value"}});
    const auto steps = per_step.i64("step");
    const auto values = per_step.f64("value");
    for (std::size_t r = 0; r < per_step.num_rows(); ++r) {
      if (values[r] > rule.threshold_ns)
        events.push_back(TriggerEvent{rule.name, steps[r], values[r]});
    }
  }
  return events;
}

}  // namespace amr
