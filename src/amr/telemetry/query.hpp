// Relational query engine over telemetry tables.
//
// The SQL-over-ClickHouse analogue of the paper's final analysis workflow
// (§IV-C): filter / group-by / aggregate, "grouped by timestep and sorted
// by rank" (Lesson 4). Queries materialize row selections eagerly and
// produce new Tables, so chains compose without lifetime traps.
//
//   Table by_rank = Query(phases)
//       .filter_i64("phase", [](auto p) { return p == 1; })
//       .group_by({"step", "rank"})
//       .agg({{"dur_ns", Agg::kSum, "comm_ns"}})
//       .run();
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "amr/telemetry/table.hpp"

namespace amr {

enum class Agg : std::uint8_t {
  kCount,
  kSum,
  kMean,
  kMin,
  kMax,
  kStddev,
  kP50,
  kP95,
  kP99,
};

const char* to_string(Agg agg);

struct AggSpec {
  std::string column;   ///< source column (ignored for kCount)
  Agg agg;
  std::string as;       ///< output column name
};

class GroupedQuery;

class Query {
 public:
  explicit Query(const Table& table);

  /// Keep rows whose i64 cell satisfies the predicate.
  Query& filter_i64(std::string_view col,
                    const std::function<bool(std::int64_t)>& pred);
  /// Keep rows whose numeric cell (any type) satisfies the predicate.
  Query& filter(std::string_view col,
                const std::function<bool(double)>& pred);

  /// Group by i64 key columns; aggregate with agg().
  GroupedQuery group_by(std::vector<std::string> keys);

  /// Materialize the current selection (all columns, filtered rows).
  Table run() const;

  /// Sort the current selection by a column (stable, ascending unless
  /// `descending`).
  Query& sort_by(std::string_view col, bool descending = false);

  /// Keep the first n rows of the current selection.
  Query& limit(std::size_t n);

  /// Selected values of one column, as doubles (in selection order).
  std::vector<double> values(std::string_view col) const;

  std::size_t count() const { return rows_.size(); }

 private:
  friend class GroupedQuery;
  const Table& table_;
  std::vector<std::size_t> rows_;
};

class GroupedQuery {
 public:
  /// Aggregate each group. Output schema: the i64 key columns, then one
  /// f64 column per AggSpec. Groups are emitted in order of first
  /// appearance (deterministic).
  Table agg(std::vector<AggSpec> specs) const;

 private:
  friend class Query;
  GroupedQuery(const Query& query, std::vector<std::string> keys);
  const Query& query_;
  std::vector<std::string> keys_;
};

/// Inner equi-join of two tables on shared i64 key columns (hash join,
/// right side built). Output schema: keys, then the remaining left
/// columns, then the remaining right columns (right names prefixed with
/// `right_prefix` on collision). Rows emit in left order; multiple right
/// matches multiply (deterministically, in right-row order).
Table join(const Table& left, const Table& right,
           const std::vector<std::string>& keys,
           const std::string& right_prefix = "r_");

}  // namespace amr
