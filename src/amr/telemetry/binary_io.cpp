#include "amr/telemetry/binary_io.hpp"

#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>

#include "amr/common/check.hpp"

namespace amr {
namespace {

constexpr char kMagic[4] = {'A', 'M', 'R', 'T'};
constexpr std::uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
bool write_pod(std::FILE* f, const T& v) {
  return std::fwrite(&v, sizeof(T), 1, f) == 1;
}

template <typename T>
void read_pod(std::FILE* f, T& v) {
  if (std::fread(&v, sizeof(T), 1, f) != 1)
    throw std::runtime_error("telemetry file truncated");
}

bool write_string(std::FILE* f, const std::string& s) {
  const auto len = static_cast<std::uint32_t>(s.size());
  return write_pod(f, len) &&
         (len == 0 || std::fwrite(s.data(), 1, len, f) == len);
}

std::string read_string(std::FILE* f) {
  std::uint32_t len = 0;
  read_pod(f, len);
  if (len > (1u << 20)) throw std::runtime_error("absurd string length");
  std::string s(len, '\0');
  if (len > 0 && std::fread(s.data(), 1, len, f) != len)
    throw std::runtime_error("telemetry file truncated");
  return s;
}

void read_header(std::FILE* f, std::string& name, std::uint32_t& ncols,
                 std::uint64_t& nrows) {
  char magic[4];
  if (std::fread(magic, 1, 4, f) != 4 ||
      std::memcmp(magic, kMagic, 4) != 0)
    throw std::runtime_error("not an AMRT telemetry file");
  std::uint32_t version = 0;
  read_pod(f, version);
  if (version != kVersion)
    throw std::runtime_error("unsupported telemetry file version");
  name = read_string(f);
  read_pod(f, ncols);
  read_pod(f, nrows);
  if (ncols == 0 || ncols > 4096)
    throw std::runtime_error("bad column count");
}

}  // namespace

bool write_table(const Table& table, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return false;
  if (std::fwrite(kMagic, 1, 4, f.get()) != 4) return false;
  if (!write_pod(f.get(), kVersion)) return false;
  if (!write_string(f.get(), table.name())) return false;
  const auto ncols = static_cast<std::uint32_t>(table.num_cols());
  const auto nrows = static_cast<std::uint64_t>(table.num_rows());
  if (!write_pod(f.get(), ncols) || !write_pod(f.get(), nrows))
    return false;
  for (std::size_t c = 0; c < table.num_cols(); ++c) {
    if (!write_string(f.get(), table.schema()[c].name)) return false;
    const auto type = static_cast<std::uint8_t>(table.col_type(c));
    double min = 0.0;
    double max = 0.0;
    table.column_stats(c, min, max);
    if (!write_pod(f.get(), type) || !write_pod(f.get(), min) ||
        !write_pod(f.get(), max))
      return false;
  }
  for (std::size_t c = 0; c < table.num_cols(); ++c) {
    const void* data = table.col_type(c) == ColType::kI64
                           ? static_cast<const void*>(table.i64(c).data())
                           : static_cast<const void*>(table.f64(c).data());
    if (nrows > 0 &&
        std::fwrite(data, 8, nrows, f.get()) != nrows)
      return false;
  }
  return true;
}

Table read_table(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) throw std::runtime_error("cannot open telemetry file: " + path);
  std::string name;
  std::uint32_t ncols = 0;
  std::uint64_t nrows = 0;
  read_header(f.get(), name, ncols, nrows);

  std::vector<ColumnDef> defs;
  defs.reserve(ncols);
  for (std::uint32_t c = 0; c < ncols; ++c) {
    ColumnDef def;
    def.name = read_string(f.get());
    std::uint8_t type = 0;
    read_pod(f.get(), type);
    if (type > 1) throw std::runtime_error("bad column type");
    def.type = static_cast<ColType>(type);
    double min_unused = 0.0;
    double max_unused = 0.0;
    read_pod(f.get(), min_unused);
    read_pod(f.get(), max_unused);
    defs.push_back(std::move(def));
  }

  Table table(name, defs);
  // Columnar data: read column buffers and re-append row-wise would be
  // O(rows*cols) dispatch; instead bulk-read into temporaries and replay.
  std::vector<std::vector<std::int64_t>> icols(ncols);
  std::vector<std::vector<double>> fcols(ncols);
  for (std::uint32_t c = 0; c < ncols; ++c) {
    if (defs[c].type == ColType::kI64) {
      icols[c].resize(nrows);
      if (nrows > 0 &&
          std::fread(icols[c].data(), 8, nrows, f.get()) != nrows)
        throw std::runtime_error("telemetry file truncated");
    } else {
      fcols[c].resize(nrows);
      if (nrows > 0 &&
          std::fread(fcols[c].data(), 8, nrows, f.get()) != nrows)
        throw std::runtime_error("telemetry file truncated");
    }
  }
  std::vector<CellValue> row(ncols);
  for (std::uint64_t r = 0; r < nrows; ++r) {
    for (std::uint32_t c = 0; c < ncols; ++c) {
      if (defs[c].type == ColType::kI64)
        row[c] = icols[c][r];
      else
        row[c] = fcols[c][r];
    }
    table.append_row(row);
  }
  return table;
}

std::vector<ColumnStats> read_table_stats(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) throw std::runtime_error("cannot open telemetry file: " + path);
  std::string name;
  std::uint32_t ncols = 0;
  std::uint64_t nrows = 0;
  read_header(f.get(), name, ncols, nrows);
  std::vector<ColumnStats> out;
  out.reserve(ncols);
  for (std::uint32_t c = 0; c < ncols; ++c) {
    ColumnStats s;
    s.name = read_string(f.get());
    std::uint8_t type = 0;
    read_pod(f.get(), type);
    if (type > 1) throw std::runtime_error("bad column type");
    s.type = static_cast<ColType>(type);
    read_pod(f.get(), s.min);
    read_pod(f.get(), s.max);
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace amr
