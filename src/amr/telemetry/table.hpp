// In-memory columnar table.
//
// The paper's analysis workflow converged on "structured schemas, binary
// formats, and relational queries" (§IV-C) after outgrowing trace files
// and CSV+pandas. Table is the core of that pipeline: a named, typed,
// append-only columnar store that the query engine (query.hpp) and the
// binary file format (binary_io.hpp) operate on.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace amr {

enum class ColType : std::uint8_t { kI64 = 0, kF64 = 1 };

struct ColumnDef {
  std::string name;
  ColType type;
};

/// A cell value for row-wise appends. Integers are accepted into f64
/// columns (exact up to 2^53); doubles never silently truncate to i64.
using CellValue = std::variant<std::int64_t, double>;

class Table {
 public:
  Table() = default;
  Table(std::string name, std::vector<ColumnDef> defs);

  const std::string& name() const { return name_; }
  std::size_t num_rows() const { return rows_; }
  std::size_t num_cols() const { return defs_.size(); }
  const std::vector<ColumnDef>& schema() const { return defs_; }

  /// Column index by name; -1 if absent.
  std::int32_t col_index(std::string_view name) const;
  ColType col_type(std::size_t col) const { return defs_[col].type; }

  /// Append one row; cells must match the schema arity and types.
  void append_row(std::initializer_list<CellValue> cells);
  void append_row(std::span<const CellValue> cells);

  /// Typed whole-column access (column must have that type).
  std::span<const std::int64_t> i64(std::string_view col) const;
  std::span<const double> f64(std::string_view col) const;
  std::span<const std::int64_t> i64(std::size_t col) const;
  std::span<const double> f64(std::size_t col) const;

  /// Generic numeric read of any cell as double.
  double value(std::size_t col, std::size_t row) const;
  /// Generic integer read (i64 column required).
  std::int64_t ivalue(std::size_t col, std::size_t row) const;

  /// Column min/max as doubles (the "embedded statistics" of columnar
  /// formats, used by binary_io and query pruning). 0/0 for empty tables.
  void column_stats(std::size_t col, double& min, double& max) const;

  /// Pre-size every column for `rows` total rows; appends up to that
  /// count never reallocate.
  void reserve(std::size_t rows);

  /// Drop all rows; schema and name are kept, capacity is released.
  void clear();

  /// Heap bytes held by the column storage (capacity, not just rows).
  std::size_t bytes_used() const;

  /// Render the first `max_rows` rows as an aligned text grid.
  std::string format(std::size_t max_rows = 20) const;

 private:
  friend class TableBuilder;
  std::size_t checked_col(std::string_view name, ColType type) const;

  std::string name_;
  std::vector<ColumnDef> defs_;
  std::vector<std::vector<std::int64_t>> i64_cols_;  // parallel to defs_
  std::vector<std::vector<double>> f64_cols_;        // unused slots empty
  std::size_t rows_ = 0;
};

}  // namespace amr
