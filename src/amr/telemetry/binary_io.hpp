// Binary columnar file format for telemetry tables.
//
// The paper's pipeline moved from CSV to "custom binary formats for
// efficiency" and cites Parquet-style embedded statistics as the right
// foundation (§IV-C, Lesson 4). This is that format, minimally: a typed
// columnar layout with per-column min/max statistics in the header, so
// readers can prune files without scanning data.
//
// Layout (little-endian):
//   magic "AMRT", u32 version
//   u32 name_len, name bytes
//   u32 ncols, u64 nrows
//   per column: u32 name_len, name bytes, u8 type, f64 min, f64 max
//   per column: nrows * 8 bytes of raw values
#pragma once

#include <string>

#include "amr/telemetry/table.hpp"

namespace amr {

/// Serialize a table. Returns false on I/O failure.
bool write_table(const Table& table, const std::string& path);

/// Deserialize; throws std::runtime_error on malformed input.
Table read_table(const std::string& path);

/// Read only the per-column statistics (no data scan).
struct ColumnStats {
  std::string name;
  ColType type;
  double min = 0.0;
  double max = 0.0;
};
std::vector<ColumnStats> read_table_stats(const std::string& path);

}  // namespace amr
