// In-situ telemetry collection facade.
//
// Plays the role of the paper's MPI/Kokkos-profiling-interface collection
// layer (§IV-C): the simulation driver records per-(step, rank) phase
// durations, per-(step, rank) message aggregates, and per-(step, block)
// compute costs into structured tables that the query engine analyzes and
// binary_io persists.
#pragma once

#include <cstdint>

#include "amr/common/time.hpp"
#include "amr/telemetry/table.hpp"

namespace amr {

/// Execution phases of a BSP AMR timestep (Fig 6a's decomposition).
enum class Phase : std::int64_t {
  kCompute = 0,    ///< physics kernels on local blocks
  kComm = 1,       ///< boundary exchange: packs, sends, recv waits
  kSync = 2,       ///< blocking collective wait
  kRebalance = 3,  ///< placement computation + block migration
};

constexpr const char* to_string(Phase p) {
  switch (p) {
    case Phase::kCompute: return "compute";
    case Phase::kComm: return "comm";
    case Phase::kSync: return "sync";
    case Phase::kRebalance: return "rebalance";
  }
  return "?";
}

class Collector {
 public:
  Collector();

  /// phases(step i64, rank i64, phase i64, dur_ns i64)
  void record_phase(std::int64_t step, std::int32_t rank, Phase phase,
                    TimeNs dur);

  /// comm(step, rank, msgs_local i64, msgs_remote i64, bytes_local i64,
  ///      bytes_remote i64, send_wait_ns i64, recv_wait_ns i64,
  ///      msgs_coalesced i64, bytes_packed i64)
  /// The last two count message aggregation (0 on the legacy path), so
  /// msgs_local/msgs_remote before vs after --aggregate are directly
  /// queryable from the same table.
  void record_comm(std::int64_t step, std::int32_t rank,
                   std::int64_t msgs_local, std::int64_t msgs_remote,
                   std::int64_t bytes_local, std::int64_t bytes_remote,
                   TimeNs send_wait, TimeNs recv_wait,
                   std::int64_t msgs_coalesced = 0,
                   std::int64_t bytes_packed = 0);

  /// blocks(step, block i64, rank i64, cost_ns i64)
  void record_block(std::int64_t step, std::int32_t block,
                    std::int32_t rank, TimeNs cost);

  /// shards(step, shard i64, events i64, epochs i64, stalls i64,
  ///        mailbox i64) — per-(step, DES shard) execution counters from
  ///        the sharded engine (empty for sequential runs). `stalls`
  ///        counts lookahead epochs in which the shard dispatched
  ///        nothing — the shard-imbalance signal.
  void record_shard(std::int64_t step, std::int32_t shard,
                    std::int64_t events, std::int64_t epochs,
                    std::int64_t stalls, std::int64_t mailbox);

  /// placement(step i64, x f64, mode i64, candidates i64,
  ///           chunks_reused i64, chunks_total i64, moved i64,
  ///           predicted_ns f64, measured_ns f64, err_ewma f64) — one
  /// row per redistribution under the placement-engine modes (empty for
  /// legacy runs, so legacy bytes_used/eviction behaviour is unchanged).
  /// `x` is the chosen CPLX X; `mode` is the tuner mode (0 surrogate,
  /// 1 measured probe, -1 incremental-only); `measured_ns` is the mean
  /// executed-window wall the tuner observed for the PREVIOUS epoch.
  /// All values are simulated/deterministic — no host wall-clock.
  void record_placement(std::int64_t step, double x, std::int64_t mode,
                        std::int64_t candidates, std::int64_t chunks_reused,
                        std::int64_t chunks_total, std::int64_t moved,
                        double predicted_ns, double measured_ns,
                        double err_ewma);

  const Table& phases() const { return phases_; }
  const Table& comm() const { return comm_; }
  const Table& blocks() const { return blocks_; }
  const Table& shards() const { return shards_; }
  const Table& placement() const { return placement_; }

  /// Enable/disable per-block records (largest table; off by default for
  /// big sweeps).
  void set_block_records(bool enabled) { block_records_ = enabled; }
  bool block_records() const { return block_records_; }

  /// Pre-size the tables for an expected row volume (a run's steps x
  /// ranks) so per-step appends never reallocate.
  void reserve(std::size_t phase_rows, std::size_t comm_rows,
               std::size_t block_rows);

  /// Drop all recorded rows (schemas survive). Long sweeps and the
  /// trace->table exporters use this to reuse one collector per run.
  void clear();

  /// Replace all five tables with checkpointed copies. The tables must
  /// carry this collector's schemas (schema mismatch aborts).
  void restore(Table phases, Table comm, Table blocks, Table shards,
               Table placement);

  /// Total heap bytes held by the tables' column storage.
  std::size_t bytes_used() const;

 private:
  Table phases_;
  Table comm_;
  Table blocks_;
  Table shards_;
  Table placement_;
  bool block_records_ = true;
};

}  // namespace amr
