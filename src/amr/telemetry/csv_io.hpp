// CSV serialization for telemetry tables.
//
// The paper's pipeline started here: "We wrote TAU plugins to emit CSVs
// which we analyzed with pandas in python. As we scaled up, parsing time
// became a bottleneck, and we switched to custom binary formats" (§IV-C).
// amr-cplx keeps the CSV stage for interoperability (any external tool
// can read it) and so bench_telemetry_pipeline can measure exactly the
// bottleneck the paper hit.
//
// Format: header row of "name:type" fields (type in {i64, f64}), then one
// row per record; i64 cells must parse as integers.
#pragma once

#include <string>

#include "amr/telemetry/table.hpp"

namespace amr {

/// Serialize a table to CSV. Returns false on I/O failure.
bool write_csv(const Table& table, const std::string& path);

/// Parse a CSV produced by write_csv; throws std::runtime_error on
/// malformed input.
Table read_csv(const std::string& path);

}  // namespace amr
