#include "amr/telemetry/collector.hpp"

#include <utility>

#include "amr/common/check.hpp"

namespace amr {
namespace {

bool same_schema(const Table& a, const Table& b) {
  if (a.name() != b.name() || a.schema().size() != b.schema().size())
    return false;
  for (std::size_t i = 0; i < a.schema().size(); ++i)
    if (a.schema()[i].name != b.schema()[i].name ||
        a.schema()[i].type != b.schema()[i].type)
      return false;
  return true;
}

}  // namespace

Collector::Collector()
    : phases_("phases", {{"step", ColType::kI64},
                         {"rank", ColType::kI64},
                         {"phase", ColType::kI64},
                         {"dur_ns", ColType::kI64}}),
      comm_("comm", {{"step", ColType::kI64},
                     {"rank", ColType::kI64},
                     {"msgs_local", ColType::kI64},
                     {"msgs_remote", ColType::kI64},
                     {"bytes_local", ColType::kI64},
                     {"bytes_remote", ColType::kI64},
                     {"send_wait_ns", ColType::kI64},
                     {"recv_wait_ns", ColType::kI64},
                     {"msgs_coalesced", ColType::kI64},
                     {"bytes_packed", ColType::kI64}}),
      blocks_("blocks", {{"step", ColType::kI64},
                         {"block", ColType::kI64},
                         {"rank", ColType::kI64},
                         {"cost_ns", ColType::kI64}}),
      shards_("shards", {{"step", ColType::kI64},
                         {"shard", ColType::kI64},
                         {"events", ColType::kI64},
                         {"epochs", ColType::kI64},
                         {"stalls", ColType::kI64},
                         {"mailbox", ColType::kI64}}),
      placement_("placement", {{"step", ColType::kI64},
                               {"x", ColType::kF64},
                               {"mode", ColType::kI64},
                               {"candidates", ColType::kI64},
                               {"chunks_reused", ColType::kI64},
                               {"chunks_total", ColType::kI64},
                               {"moved", ColType::kI64},
                               {"predicted_ns", ColType::kF64},
                               {"measured_ns", ColType::kF64},
                               {"err_ewma", ColType::kF64}}) {}

void Collector::record_phase(std::int64_t step, std::int32_t rank,
                             Phase phase, TimeNs dur) {
  phases_.append_row({step, static_cast<std::int64_t>(rank),
                      static_cast<std::int64_t>(phase),
                      static_cast<std::int64_t>(dur)});
}

void Collector::record_comm(std::int64_t step, std::int32_t rank,
                            std::int64_t msgs_local,
                            std::int64_t msgs_remote,
                            std::int64_t bytes_local,
                            std::int64_t bytes_remote, TimeNs send_wait,
                            TimeNs recv_wait, std::int64_t msgs_coalesced,
                            std::int64_t bytes_packed) {
  comm_.append_row({step, static_cast<std::int64_t>(rank), msgs_local,
                    msgs_remote, bytes_local, bytes_remote,
                    static_cast<std::int64_t>(send_wait),
                    static_cast<std::int64_t>(recv_wait), msgs_coalesced,
                    bytes_packed});
}

void Collector::reserve(std::size_t phase_rows, std::size_t comm_rows,
                        std::size_t block_rows) {
  phases_.reserve(phase_rows);
  comm_.reserve(comm_rows);
  if (block_records_) blocks_.reserve(block_rows);
}

void Collector::clear() {
  phases_.clear();
  comm_.clear();
  blocks_.clear();
  shards_.clear();
  placement_.clear();
}

void Collector::restore(Table phases, Table comm, Table blocks,
                        Table shards, Table placement) {
  AMR_CHECK_MSG(same_schema(phases, phases_) && same_schema(comm, comm_) &&
                    same_schema(blocks, blocks_) &&
                    same_schema(shards, shards_) &&
                    same_schema(placement, placement_),
                "restored telemetry tables do not match the collector schema");
  phases_ = std::move(phases);
  comm_ = std::move(comm);
  blocks_ = std::move(blocks);
  shards_ = std::move(shards);
  placement_ = std::move(placement);
}

std::size_t Collector::bytes_used() const {
  return phases_.bytes_used() + comm_.bytes_used() + blocks_.bytes_used() +
         shards_.bytes_used() + placement_.bytes_used();
}

void Collector::record_block(std::int64_t step, std::int32_t block,
                             std::int32_t rank, TimeNs cost) {
  if (!block_records_) return;
  blocks_.append_row({step, static_cast<std::int64_t>(block),
                      static_cast<std::int64_t>(rank),
                      static_cast<std::int64_t>(cost)});
}

void Collector::record_shard(std::int64_t step, std::int32_t shard,
                             std::int64_t events, std::int64_t epochs,
                             std::int64_t stalls, std::int64_t mailbox) {
  shards_.append_row({step, static_cast<std::int64_t>(shard), events,
                      epochs, stalls, mailbox});
}

void Collector::record_placement(std::int64_t step, double x,
                                 std::int64_t mode, std::int64_t candidates,
                                 std::int64_t chunks_reused,
                                 std::int64_t chunks_total,
                                 std::int64_t moved, double predicted_ns,
                                 double measured_ns, double err_ewma) {
  placement_.append_row({step, x, mode, candidates, chunks_reused,
                         chunks_total, moved, predicted_ns, measured_ns,
                         err_ewma});
}

}  // namespace amr
