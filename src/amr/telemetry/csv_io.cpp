#include "amr/telemetry/csv_io.hpp"

#include <charconv>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <vector>

namespace amr {
namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
}

bool read_line(std::FILE* f, std::string& line) {
  line.clear();
  int c = 0;
  while ((c = std::fgetc(f)) != EOF) {
    if (c == '\n') return true;
    if (c != '\r') line.push_back(static_cast<char>(c));
  }
  return !line.empty();
}

}  // namespace

bool write_csv(const Table& table, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (!f) return false;
  // Header: name:type.
  for (std::size_t c = 0; c < table.num_cols(); ++c) {
    const auto& def = table.schema()[c];
    if (std::fprintf(f.get(), "%s%s:%s", c > 0 ? "," : "",
                     def.name.c_str(),
                     def.type == ColType::kI64 ? "i64" : "f64") < 0)
      return false;
  }
  if (std::fputc('\n', f.get()) == EOF) return false;
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    for (std::size_t c = 0; c < table.num_cols(); ++c) {
      if (c > 0 && std::fputc(',', f.get()) == EOF) return false;
      int written;
      if (table.col_type(c) == ColType::kI64)
        written = std::fprintf(f.get(), "%lld",
                               static_cast<long long>(table.ivalue(c, r)));
      else
        written = std::fprintf(f.get(), "%.17g", table.value(c, r));
      if (written < 0) return false;
    }
    if (std::fputc('\n', f.get()) == EOF) return false;
  }
  return true;
}

Table read_csv(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "r"));
  if (!f) throw std::runtime_error("cannot open CSV: " + path);
  std::string line;
  if (!read_line(f.get(), line))
    throw std::runtime_error("empty CSV: " + path);

  std::vector<ColumnDef> defs;
  for (const std::string& field : split_fields(line)) {
    const std::size_t colon = field.rfind(':');
    if (colon == std::string::npos)
      throw std::runtime_error("CSV header field lacks :type suffix");
    const std::string type = field.substr(colon + 1);
    ColumnDef def;
    def.name = field.substr(0, colon);
    if (type == "i64")
      def.type = ColType::kI64;
    else if (type == "f64")
      def.type = ColType::kF64;
    else
      throw std::runtime_error("unknown CSV column type: " + type);
    defs.push_back(std::move(def));
  }

  Table table(path, defs);
  std::vector<CellValue> row(defs.size());
  std::size_t line_no = 1;
  while (read_line(f.get(), line)) {
    ++line_no;
    const auto fields = split_fields(line);
    if (fields.size() != defs.size())
      throw std::runtime_error("CSV row arity mismatch at line " +
                               std::to_string(line_no));
    for (std::size_t c = 0; c < fields.size(); ++c) {
      const std::string& field = fields[c];
      if (defs[c].type == ColType::kI64) {
        std::int64_t v = 0;
        const auto [ptr, ec] = std::from_chars(
            field.data(), field.data() + field.size(), v);
        if (ec != std::errc{} || ptr != field.data() + field.size())
          throw std::runtime_error("bad i64 cell at line " +
                                   std::to_string(line_no));
        row[c] = v;
      } else {
        char* end = nullptr;
        const double v = std::strtod(field.c_str(), &end);
        if (end != field.c_str() + field.size())
          throw std::runtime_error("bad f64 cell at line " +
                                   std::to_string(line_no));
        row[c] = v;
      }
    }
    table.append_row(row);
  }
  return table;
}

}  // namespace amr
