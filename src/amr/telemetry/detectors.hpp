// Telemetry anomaly detectors.
//
// The analytical methods the paper used to establish measurement trust:
//  * ThrottleDetector — finds the Fig 2 signature: compute inflation on
//    clusters of ranks sharing a node (thermal throttling).
//  * SpikeDetector — robust (median/MAD) outlier detection for the
//    MPI_Wait spike timelines of Fig 1b.
//  * correlation_report — the Fig 1a diagnostic: does measured
//    communication time track message volume?
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "amr/topo/topology.hpp"

namespace amr {

struct ThrottleReport {
  std::vector<std::int32_t> flagged_ranks;
  std::vector<std::int32_t> flagged_nodes;  ///< nodes with majority flagged
  double median_compute = 0.0;
  double flagged_mean_inflation = 0.0;  ///< mean(flagged)/median(all)
};

/// Flag ranks whose mean compute time exceeds `factor` x the median rank,
/// and nodes where at least half the resident ranks are flagged — the
/// "clusters of 16" pattern that distinguishes hardware fail-slow from
/// algorithmic imbalance.
ThrottleReport detect_throttling(std::span<const double> per_rank_compute,
                                 const ClusterTopology& topo,
                                 double factor = 2.0);

struct SpikeReport {
  std::vector<std::size_t> spike_indices;
  double median = 0.0;
  double mad = 0.0;          ///< median absolute deviation
  double spike_mass = 0.0;   ///< sum(spike values) / sum(all values)
  double mean_with_spikes = 0.0;
  double mean_without_spikes = 0.0;
};

/// Robust spike detection: value > median + k * MAD (MAD scaled by 1.4826
/// to estimate sigma). Suits heavy-tailed wait-time series where the mean
/// and stddev are themselves corrupted by the spikes.
SpikeReport detect_spikes(std::span<const double> series, double k = 6.0);

struct CorrelationReport {
  double pearson = 0.0;
  std::size_t n = 0;
  /// Mean y per x-quartile: a monotone profile indicates usable signal
  /// even when outliers depress the Pearson coefficient.
  std::array<double, 4> quartile_means{};
};

/// The Fig 1a diagnostic: correlate a per-rank work metric (message
/// volume) against a per-rank time metric (communication time).
CorrelationReport correlation_report(std::span<const double> work,
                                     std::span<const double> time);

}  // namespace amr
