// Simulated MPI communication layer.
//
// Provides the communication semantics AMR codes actually use (paper
// §II-B): nonblocking point-to-point boundary exchanges awaited per
// synchronization window, plus blocking collectives whose completion is
// gated by the slowest rank — the straggler amplifier at the heart of the
// paper. Happened-before ordering is exact: a receiver can only resume
// after the sender's message physically departs and flies, which is what
// makes the two-rank critical-path principle (§IV-D) hold by construction.
//
// Exchanges are organized in "windows" (one per timestep phase): the
// driver declares how many messages each rank will receive, ranks post
// sends and then wait for their expected arrivals, and collectives close
// the window.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "amr/des/engine.hpp"
#include "amr/net/fabric.hpp"

namespace amr {

class ShardedEngine;
class Tracer;

/// Callbacks into the per-rank runtime (implemented by exec::RankRuntime).
/// `engine` is the engine that dispatched the triggering event — under
/// sharding, the rank's own shard engine, which the endpoint must use for
/// any continuation it schedules (in the sequential case it is simply the
/// one global engine).
class RankEndpoint {
 public:
  virtual ~RankEndpoint() = default;
  /// All expected messages of `window` have arrived (rank had a pending
  /// wait). `t` is the completing delivery's time and `releasing_src` the
  /// sender of that final message — the second rank of a two-rank
  /// critical path (paper §IV-D).
  virtual void on_recvs_ready(Engine& engine, std::uint64_t window,
                              TimeNs t, std::int32_t releasing_src) = 0;
  /// The collective entered in `window` completed at time `t`.
  virtual void on_collective_done(Engine& engine, std::uint64_t window,
                                  TimeNs t) = 0;

  /// Every message delivery (before any on_recvs_ready). `dst_tag` is the
  /// sender-supplied routing tag (e.g. destination block id) — the hook
  /// the overlap runtime uses to track per-block readiness. Default:
  /// ignored (the BSP runtime only cares about window completion).
  virtual void on_message(Engine& engine, std::uint64_t window, TimeNs t,
                          std::int32_t src, std::int64_t dst_tag) {
    (void)engine;
    (void)window;
    (void)t;
    (void)src;
    (void)dst_tag;
  }
};

/// Cost model for blocking collectives: completion = max(entry times)
/// + alpha + beta * ceil(log2(nranks)).
struct CollectiveParams {
  TimeNs alpha = us(20.0);
  TimeNs beta = us(4.0);
};

class Comm final : public EventHandler {
 public:
  /// With `sharded` non-null the comm routes events through the sharded
  /// engine instead of `engine`: deliveries and collective completions
  /// are scheduled with canonical dispatch keys (engine.hpp event_key)
  /// into the destination rank's shard — buffered through the sharded
  /// engine's mailbox when source and destination shards differ — and
  /// all mutable bookkeeping a shard thread touches is partitioned by
  /// rank or by shard (delivery pools, collective accumulators, foreign
  /// slot frees), with the merges happening in on_epoch_barrier(). The
  /// fabric must have sharding enabled so transfer() is per-node too.
  Comm(Engine& engine, Fabric& fabric, std::int32_t nranks,
       CollectiveParams collective = {}, ShardedEngine* sharded = nullptr);

  std::int32_t nranks() const { return nranks_; }
  Engine& engine() { return engine_; }
  Fabric& fabric() { return fabric_; }
  ShardedEngine* sharded() { return sharded_; }

  /// Register the runtime object receiving callbacks for `rank`.
  void set_endpoint(std::int32_t rank, RankEndpoint* endpoint);

  /// Attach an event tracer (nullptr detaches): every P2P message gets a
  /// flow arrow from its isend post to its delivery.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  /// Open a P2P exchange window. expected[r] = number of messages rank r
  /// will receive in this window. Window ids must be unique while open.
  /// The expected counts are copied into pooled per-window state, so the
  /// steady-state cost is a memcpy — no allocation per step.
  void begin_exchange(std::uint64_t window,
                      std::span<const std::int32_t> expected);
  void begin_exchange(std::uint64_t window,
                      std::initializer_list<std::int32_t> expected) {
    begin_exchange(window,
                   std::span<const std::int32_t>(expected.begin(),
                                                 expected.size()));
  }

  /// Post a nonblocking send within a window. Returns the time at which
  /// an MPI_Wait on this send request would return (buffer handed off;
  /// inflated by ACK-recovery blocking when that pathology is active).
  /// `dst_tag` rides along to the receiver's on_message hook. `msgs` > 1
  /// posts an aggregated transfer (one delivery event carrying that many
  /// logical boundary messages; counts as ONE arrival against the
  /// window's expected count, so aggregated windows must size `expected`
  /// per peer rather than per block pair). `priority` marks a transfer
  /// promoted by critical-path send ordering — timing is unchanged, but
  /// the trace flow is named "p2p-priority" so promotions are visible.
  TimeNs isend(std::int32_t src, std::int32_t dst, std::int64_t bytes,
               std::uint64_t window, TimeNs post_time,
               std::int64_t dst_tag = -1, std::int32_t msgs = 1,
               bool priority = false);

  /// Rank's waitall on its receives for the window. If all messages have
  /// already arrived, returns true (rank proceeds at wait_start). If not,
  /// registers the rank for on_recvs_ready and returns false.
  bool wait_recvs(std::int32_t rank, std::uint64_t window,
                  TimeNs wait_start);

  /// True once every expected message of the window has been delivered to
  /// every rank; the window can then be closed.
  bool exchange_complete(std::uint64_t window) const;

  /// Release a completed exchange window's bookkeeping.
  void end_exchange(std::uint64_t window);

  /// Enter a blocking collective (allreduce-style). Completion fires
  /// on_collective_done on every participating rank. Every rank must
  /// enter exactly once per window.
  void enter_collective(std::uint64_t window, std::int32_t rank,
                        TimeNs entry_time);

  // EventHandler: message deliveries and collective completions.
  void on_event(Engine& engine, std::uint64_t tag) override;

  /// Sharded mode: the sharded engine's epoch-barrier hook (registered
  /// by the owner via ShardedEngine::set_barrier_callback). Runs single-
  /// threaded between epochs: returns foreign-freed delivery slots to
  /// their owning pools and merges per-shard collective accumulators,
  /// scheduling a completion event into every shard once all ranks have
  /// entered (each shard then notifies its own contiguous rank range).
  void on_epoch_barrier();

 private:
  /// Pooled per-window exchange bookkeeping. Slots are recycled across
  /// windows (open flag, not erasure), so at steady state a step reuses
  /// the previous step's vectors at full capacity. Slot indices are
  /// stable for the lifetime of the Comm — pool growth only appends —
  /// which lets on_event hold an index across endpoint callbacks.
  struct ExchangeState {
    std::uint64_t window = 0;
    bool open = false;
    std::vector<std::int32_t> expected;
    std::vector<std::int32_t> arrived;
    std::vector<TimeNs> last_delivery;
    std::vector<std::uint8_t> waiting;
    // No aggregate outstanding counter: deliveries on different shards
    // would race on it. exchange_complete/end_exchange (coordinator-only
    // calls) sum expected - arrived on demand instead.
  };

  /// Active collectives (typically one): linear scan beats a hash map at
  /// this population and allocates nothing after the first window.
  struct CollectiveState {
    std::uint64_t window = 0;
    std::int32_t entered = 0;
    TimeNs max_entry = 0;
  };

  struct PendingDelivery {
    std::uint64_t window;
    std::int32_t dst;
    std::int32_t src;
    std::int64_t dst_tag;
    std::int64_t bytes;
    std::uint64_t flow_id;  ///< trace flow pair id (0 = untraced)
  };

  // Event tags: bit 63 selects delivery (0) vs collective completion
  // (1, bits 32..62 = window id). A delivery tag is its pool slot in
  // bits 0..39 plus the owning pool's shard in bits 40..62 — shard 0's
  // tags equal the raw slot, keeping the sequential path's tags (and
  // kDes trace output) identical to the single-pool layout.
  static constexpr std::uint64_t kCollectiveBit = 1ULL << 63;
  static constexpr unsigned kPoolShardShift = 40;
  static constexpr std::uint64_t kSlotMask = (1ULL << kPoolShardShift) - 1;

  /// Per-shard delivery arena (one pool in the sequential case). Only
  /// the owning shard's thread allocates from a pool; frees from other
  /// shards detour through foreign_frees_ to the next epoch barrier.
  struct DeliveryPool {
    std::vector<PendingDelivery> deliveries;
    std::vector<std::uint64_t> free_slots;
  };

  std::uint64_t alloc_delivery(std::int32_t pool_shard,
                               const PendingDelivery& d);

  Engine& engine_;
  Fabric& fabric_;
  ShardedEngine* sharded_;
  Tracer* tracer_ = nullptr;
  std::int32_t nranks_;
  CollectiveParams collective_params_;
  TimeNs collective_overhead_;  // alpha + beta*ceil(log2(nranks))
  /// Index of the open window's slot in exchanges_; -1 if not open.
  std::ptrdiff_t find_exchange(std::uint64_t window) const;

  std::vector<RankEndpoint*> endpoints_;
  std::vector<ExchangeState> exchanges_;       // pooled, see ExchangeState
  std::vector<CollectiveState> collectives_;   // active only, swap-pop
  std::vector<DeliveryPool> pools_;            // [shard]; [0] sequential
  /// Per-source-rank monotone send counters, the per-class uniquifier of
  /// delivery dispatch keys. Not checkpointed: no delivery is in flight
  /// at a step boundary, so resetting them applies a common offset per
  /// source and preserves every relative order.
  std::vector<std::uint64_t> send_seq_;
  /// [dispatching shard] -> delivery tags freed for another shard's
  /// pool this epoch; returned to their owners at the barrier.
  std::vector<std::vector<std::uint64_t>> foreign_frees_;
  /// [shard] -> collective entries accumulated by that shard's ranks
  /// this epoch; merged (commutatively: counts add, max_entry maxes)
  /// into collectives_ at the barrier.
  std::vector<std::vector<CollectiveState>> shard_collectives_;
};

}  // namespace amr
