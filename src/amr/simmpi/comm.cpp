#include "amr/simmpi/comm.hpp"

#include <bit>

#include "amr/common/check.hpp"
#include "amr/trace/tracer.hpp"

namespace amr {

Comm::Comm(Engine& engine, Fabric& fabric, std::int32_t nranks,
           CollectiveParams collective)
    : engine_(engine), fabric_(fabric), nranks_(nranks),
      collective_params_(collective),
      endpoints_(static_cast<std::size_t>(nranks), nullptr) {
  AMR_CHECK(nranks > 0);
  const auto log2p = static_cast<TimeNs>(std::bit_width(
      static_cast<std::uint64_t>(nranks - 1)));  // ceil(log2(nranks))
  collective_overhead_ =
      collective_params_.alpha + collective_params_.beta * log2p;
}

void Comm::set_endpoint(std::int32_t rank, RankEndpoint* endpoint) {
  AMR_CHECK(rank >= 0 && rank < nranks_);
  endpoints_[static_cast<std::size_t>(rank)] = endpoint;
}

std::ptrdiff_t Comm::find_exchange(std::uint64_t window) const {
  for (std::size_t i = 0; i < exchanges_.size(); ++i)
    if (exchanges_[i].open && exchanges_[i].window == window)
      return static_cast<std::ptrdiff_t>(i);
  return -1;
}

void Comm::begin_exchange(std::uint64_t window,
                          std::span<const std::int32_t> expected) {
  AMR_CHECK(window < (1ULL << 31));
  AMR_CHECK(expected.size() == static_cast<std::size_t>(nranks_));
  AMR_CHECK_MSG(find_exchange(window) < 0, "window id already open");
  std::size_t slot = exchanges_.size();
  for (std::size_t i = 0; i < exchanges_.size(); ++i) {
    if (!exchanges_[i].open) {
      slot = i;
      break;
    }
  }
  if (slot == exchanges_.size()) exchanges_.emplace_back();
  ExchangeState& state = exchanges_[slot];
  state.window = window;
  state.open = true;
  state.expected.assign(expected.begin(), expected.end());
  state.arrived.assign(static_cast<std::size_t>(nranks_), 0);
  state.last_delivery.assign(static_cast<std::size_t>(nranks_), 0);
  state.waiting.assign(static_cast<std::size_t>(nranks_), 0);
  state.outstanding = 0;
  for (const std::int32_t e : state.expected) {
    AMR_CHECK(e >= 0);
    state.outstanding += e;
  }
}

TimeNs Comm::isend(std::int32_t src, std::int32_t dst, std::int64_t bytes,
                   std::uint64_t window, TimeNs post_time,
                   std::int64_t dst_tag, std::int32_t msgs) {
  AMR_CHECK(src != dst);
  AMR_CHECK_MSG(find_exchange(window) >= 0,
                "isend outside an open exchange window");
  const TransferTiming t =
      fabric_.transfer(src, dst, bytes, post_time, msgs);
  std::uint64_t flow_id = 0;
  if (tracer_ != nullptr) {
    // Flow origin sits 1 ns inside the sender's pack span (which ends at
    // post_time) so Perfetto binds the arrow to that slice.
    flow_id = tracer_->flow_begin(
        src, TraceCat::kMsg, "p2p",
        post_time > 0 ? post_time - 1 : post_time, bytes, dst);
  }
  std::uint64_t slot;
  if (!free_delivery_slots_.empty()) {
    slot = free_delivery_slots_.back();
    free_delivery_slots_.pop_back();
    deliveries_[slot] =
        PendingDelivery{window, dst, src, dst_tag, bytes, flow_id};
  } else {
    slot = deliveries_.size();
    deliveries_.push_back(
        PendingDelivery{window, dst, src, dst_tag, bytes, flow_id});
  }
  engine_.schedule_at(t.delivery, this, slot);
  return t.sender_release;
}

bool Comm::wait_recvs(std::int32_t rank, std::uint64_t window,
                      TimeNs wait_start) {
  const std::ptrdiff_t xi = find_exchange(window);
  AMR_CHECK(xi >= 0);
  ExchangeState& state = exchanges_[static_cast<std::size_t>(xi)];
  const auto r = static_cast<std::size_t>(rank);
  if (state.arrived[r] >= state.expected[r]) return true;
  (void)wait_start;
  AMR_CHECK_MSG(state.waiting[r] == 0, "rank already waiting on window");
  state.waiting[r] = 1;
  return false;
}

bool Comm::exchange_complete(std::uint64_t window) const {
  const std::ptrdiff_t xi = find_exchange(window);
  AMR_CHECK(xi >= 0);
  return exchanges_[static_cast<std::size_t>(xi)].outstanding == 0;
}

void Comm::end_exchange(std::uint64_t window) {
  const std::ptrdiff_t xi = find_exchange(window);
  AMR_CHECK(xi >= 0);
  ExchangeState& state = exchanges_[static_cast<std::size_t>(xi)];
  AMR_CHECK_MSG(state.outstanding == 0,
                "closing window with undelivered messages");
  state.open = false;  // slot (and its vectors) recycled by the next open
}

void Comm::enter_collective(std::uint64_t window, std::int32_t rank,
                            TimeNs entry_time) {
  AMR_CHECK(window < (1ULL << 31));
  AMR_CHECK(rank >= 0 && rank < nranks_);
  CollectiveState* found = nullptr;
  for (auto& c : collectives_)
    if (c.window == window) {
      found = &c;
      break;
    }
  if (found == nullptr) {
    collectives_.push_back(CollectiveState{window, 0, 0});
    found = &collectives_.back();
  }
  CollectiveState& state = *found;
  ++state.entered;
  state.max_entry = std::max(state.max_entry, entry_time);
  AMR_CHECK_MSG(state.entered <= nranks_,
                "rank entered collective twice in one window");
  if (state.entered == nranks_) {
    const TimeNs done = state.max_entry + collective_overhead_;
    engine_.schedule_at(done, this, kCollectiveBit | (window << 32));
  }
}

void Comm::on_event(Engine& engine, std::uint64_t tag) {
  if (tag & kCollectiveBit) {
    const std::uint64_t window = (tag & ~kCollectiveBit) >> 32;
    std::size_t ci = collectives_.size();
    for (std::size_t i = 0; i < collectives_.size(); ++i)
      if (collectives_[i].window == window) {
        ci = i;
        break;
      }
    AMR_CHECK(ci < collectives_.size());
    // Remove before the callbacks: a rank may re-enter the next window's
    // collective from on_collective_done.
    collectives_[ci] = collectives_.back();
    collectives_.pop_back();
    for (std::int32_t r = 0; r < nranks_; ++r) {
      RankEndpoint* ep = endpoints_[static_cast<std::size_t>(r)];
      AMR_CHECK(ep != nullptr);
      ep->on_collective_done(window, engine.now());
    }
    return;
  }
  // Message delivery.
  const PendingDelivery d = deliveries_[tag];
  free_delivery_slots_.push_back(tag);
  const std::uint64_t window = d.window;
  const std::int32_t rank = d.dst;
  const std::ptrdiff_t xi = find_exchange(window);
  AMR_CHECK(xi >= 0);
  const auto r = static_cast<std::size_t>(rank);
  {
    ExchangeState& state = exchanges_[static_cast<std::size_t>(xi)];
    ++state.arrived[r];
    --state.outstanding;
    state.last_delivery[r] = engine.now();
    if (tracer_ != nullptr)
      tracer_->flow_end(d.dst, TraceCat::kMsg, "p2p", engine.now(),
                        d.flow_id, d.bytes, d.src);
    AMR_CHECK_MSG(state.arrived[r] <= state.expected[r],
                  "more deliveries than expected; window mismatch");
  }
  if (RankEndpoint* ep = endpoints_[r]; ep != nullptr)
    ep->on_message(window, engine.now(), d.src, d.dst_tag);
  // Re-index after the callback: slot indices are stable, but the pool
  // vector may have grown if the endpoint opened a window.
  ExchangeState& state = exchanges_[static_cast<std::size_t>(xi)];
  if (state.waiting[r] != 0 && state.arrived[r] == state.expected[r]) {
    state.waiting[r] = 0;
    RankEndpoint* ep = endpoints_[r];
    AMR_CHECK(ep != nullptr);
    ep->on_recvs_ready(window, engine.now(), d.src);
  }
}

}  // namespace amr
