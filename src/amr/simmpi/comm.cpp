#include "amr/simmpi/comm.hpp"

#include <bit>

#include "amr/common/check.hpp"
#include "amr/trace/tracer.hpp"

namespace amr {

Comm::Comm(Engine& engine, Fabric& fabric, std::int32_t nranks,
           CollectiveParams collective)
    : engine_(engine), fabric_(fabric), nranks_(nranks),
      collective_params_(collective),
      endpoints_(static_cast<std::size_t>(nranks), nullptr) {
  AMR_CHECK(nranks > 0);
  const auto log2p = static_cast<TimeNs>(std::bit_width(
      static_cast<std::uint64_t>(nranks - 1)));  // ceil(log2(nranks))
  collective_overhead_ =
      collective_params_.alpha + collective_params_.beta * log2p;
}

void Comm::set_endpoint(std::int32_t rank, RankEndpoint* endpoint) {
  AMR_CHECK(rank >= 0 && rank < nranks_);
  endpoints_[static_cast<std::size_t>(rank)] = endpoint;
}

void Comm::begin_exchange(std::uint64_t window,
                          std::vector<std::int32_t> expected) {
  AMR_CHECK(window < (1ULL << 31));
  AMR_CHECK(expected.size() == static_cast<std::size_t>(nranks_));
  AMR_CHECK_MSG(!exchanges_.contains(window), "window id already open");
  ExchangeState state;
  state.expected = std::move(expected);
  state.arrived.assign(static_cast<std::size_t>(nranks_), 0);
  state.last_delivery.assign(static_cast<std::size_t>(nranks_), 0);
  state.waiting.assign(static_cast<std::size_t>(nranks_), 0);
  for (const std::int32_t e : state.expected) {
    AMR_CHECK(e >= 0);
    state.outstanding += e;
  }
  exchanges_.emplace(window, std::move(state));
}

TimeNs Comm::isend(std::int32_t src, std::int32_t dst, std::int64_t bytes,
                   std::uint64_t window, TimeNs post_time,
                   std::int64_t dst_tag) {
  AMR_CHECK(src != dst);
  AMR_CHECK_MSG(exchanges_.contains(window),
                "isend outside an open exchange window");
  const TransferTiming t = fabric_.transfer(src, dst, bytes, post_time);
  std::uint64_t flow_id = 0;
  if (tracer_ != nullptr) {
    // Flow origin sits 1 ns inside the sender's pack span (which ends at
    // post_time) so Perfetto binds the arrow to that slice.
    flow_id = tracer_->flow_begin(
        src, TraceCat::kMsg, "p2p",
        post_time > 0 ? post_time - 1 : post_time, bytes, dst);
  }
  std::uint64_t slot;
  if (!free_delivery_slots_.empty()) {
    slot = free_delivery_slots_.back();
    free_delivery_slots_.pop_back();
    deliveries_[slot] =
        PendingDelivery{window, dst, src, dst_tag, bytes, flow_id};
  } else {
    slot = deliveries_.size();
    deliveries_.push_back(
        PendingDelivery{window, dst, src, dst_tag, bytes, flow_id});
  }
  engine_.schedule_at(t.delivery, this, slot);
  return t.sender_release;
}

bool Comm::wait_recvs(std::int32_t rank, std::uint64_t window,
                      TimeNs wait_start) {
  auto it = exchanges_.find(window);
  AMR_CHECK(it != exchanges_.end());
  ExchangeState& state = it->second;
  const auto r = static_cast<std::size_t>(rank);
  if (state.arrived[r] >= state.expected[r]) return true;
  (void)wait_start;
  AMR_CHECK_MSG(state.waiting[r] == 0, "rank already waiting on window");
  state.waiting[r] = 1;
  return false;
}

bool Comm::exchange_complete(std::uint64_t window) const {
  const auto it = exchanges_.find(window);
  AMR_CHECK(it != exchanges_.end());
  return it->second.outstanding == 0;
}

void Comm::end_exchange(std::uint64_t window) {
  const auto it = exchanges_.find(window);
  AMR_CHECK(it != exchanges_.end());
  AMR_CHECK_MSG(it->second.outstanding == 0,
                "closing window with undelivered messages");
  exchanges_.erase(it);
}

void Comm::enter_collective(std::uint64_t window, std::int32_t rank,
                            TimeNs entry_time) {
  AMR_CHECK(window < (1ULL << 31));
  AMR_CHECK(rank >= 0 && rank < nranks_);
  CollectiveState& state = collectives_[window];
  ++state.entered;
  state.max_entry = std::max(state.max_entry, entry_time);
  AMR_CHECK_MSG(state.entered <= nranks_,
                "rank entered collective twice in one window");
  if (state.entered == nranks_) {
    const TimeNs done = state.max_entry + collective_overhead_;
    engine_.schedule_at(done, this, kCollectiveBit | (window << 32));
  }
}

void Comm::on_event(Engine& engine, std::uint64_t tag) {
  if (tag & kCollectiveBit) {
    const std::uint64_t window = (tag & ~kCollectiveBit) >> 32;
    const auto it = collectives_.find(window);
    AMR_CHECK(it != collectives_.end());
    collectives_.erase(it);
    for (std::int32_t r = 0; r < nranks_; ++r) {
      RankEndpoint* ep = endpoints_[static_cast<std::size_t>(r)];
      AMR_CHECK(ep != nullptr);
      ep->on_collective_done(window, engine.now());
    }
    return;
  }
  // Message delivery.
  const PendingDelivery d = deliveries_[tag];
  free_delivery_slots_.push_back(tag);
  const std::uint64_t window = d.window;
  const std::int32_t rank = d.dst;
  const auto it = exchanges_.find(window);
  AMR_CHECK(it != exchanges_.end());
  ExchangeState& state = it->second;
  const auto r = static_cast<std::size_t>(rank);
  ++state.arrived[r];
  --state.outstanding;
  state.last_delivery[r] = engine.now();
  if (tracer_ != nullptr)
    tracer_->flow_end(d.dst, TraceCat::kMsg, "p2p", engine.now(),
                      d.flow_id, d.bytes, d.src);
  AMR_CHECK_MSG(state.arrived[r] <= state.expected[r],
                "more deliveries than expected; window mismatch");
  if (RankEndpoint* ep = endpoints_[r]; ep != nullptr)
    ep->on_message(window, engine.now(), d.src, d.dst_tag);
  if (state.waiting[r] != 0 && state.arrived[r] == state.expected[r]) {
    state.waiting[r] = 0;
    RankEndpoint* ep = endpoints_[r];
    AMR_CHECK(ep != nullptr);
    ep->on_recvs_ready(window, engine.now(), d.src);
  }
}

}  // namespace amr
