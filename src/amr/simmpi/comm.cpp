#include "amr/simmpi/comm.hpp"

#include <bit>

#include "amr/common/check.hpp"
#include "amr/des/sharded_engine.hpp"
#include "amr/trace/tracer.hpp"

namespace amr {

Comm::Comm(Engine& engine, Fabric& fabric, std::int32_t nranks,
           CollectiveParams collective, ShardedEngine* sharded)
    : engine_(engine), fabric_(fabric), sharded_(sharded), nranks_(nranks),
      collective_params_(collective),
      endpoints_(static_cast<std::size_t>(nranks), nullptr) {
  AMR_CHECK(nranks > 0);
  const auto log2p = static_cast<TimeNs>(std::bit_width(
      static_cast<std::uint64_t>(nranks - 1)));  // ceil(log2(nranks))
  collective_overhead_ =
      collective_params_.alpha + collective_params_.beta * log2p;
  const std::size_t npools =
      sharded_ != nullptr
          ? static_cast<std::size_t>(sharded_->num_shards())
          : 1;
  pools_.resize(npools);
  send_seq_.assign(static_cast<std::size_t>(nranks), 0);
  if (sharded_ != nullptr) {
    AMR_CHECK_MSG(fabric_.sharded(),
                  "sharded comm requires a sharding-enabled fabric");
    foreign_frees_.resize(npools);
    shard_collectives_.resize(npools);
  }
}

void Comm::set_endpoint(std::int32_t rank, RankEndpoint* endpoint) {
  AMR_CHECK(rank >= 0 && rank < nranks_);
  endpoints_[static_cast<std::size_t>(rank)] = endpoint;
}

std::ptrdiff_t Comm::find_exchange(std::uint64_t window) const {
  for (std::size_t i = 0; i < exchanges_.size(); ++i)
    if (exchanges_[i].open && exchanges_[i].window == window)
      return static_cast<std::ptrdiff_t>(i);
  return -1;
}

void Comm::begin_exchange(std::uint64_t window,
                          std::span<const std::int32_t> expected) {
  AMR_CHECK(window < (1ULL << 31));
  AMR_CHECK(expected.size() == static_cast<std::size_t>(nranks_));
  AMR_CHECK_MSG(find_exchange(window) < 0, "window id already open");
  std::size_t slot = exchanges_.size();
  for (std::size_t i = 0; i < exchanges_.size(); ++i) {
    if (!exchanges_[i].open) {
      slot = i;
      break;
    }
  }
  if (slot == exchanges_.size()) exchanges_.emplace_back();
  ExchangeState& state = exchanges_[slot];
  state.window = window;
  state.open = true;
  state.expected.assign(expected.begin(), expected.end());
  state.arrived.assign(static_cast<std::size_t>(nranks_), 0);
  state.last_delivery.assign(static_cast<std::size_t>(nranks_), 0);
  state.waiting.assign(static_cast<std::size_t>(nranks_), 0);
  for (const std::int32_t e : state.expected) AMR_CHECK(e >= 0);
}

std::uint64_t Comm::alloc_delivery(std::int32_t pool_shard,
                                   const PendingDelivery& d) {
  DeliveryPool& pool = pools_[static_cast<std::size_t>(pool_shard)];
  std::uint64_t slot;
  if (!pool.free_slots.empty()) {
    slot = pool.free_slots.back();
    pool.free_slots.pop_back();
    pool.deliveries[slot] = d;
  } else {
    slot = pool.deliveries.size();
    pool.deliveries.push_back(d);
  }
  AMR_CHECK(slot <= kSlotMask);
  return (static_cast<std::uint64_t>(pool_shard) << kPoolShardShift) | slot;
}

TimeNs Comm::isend(std::int32_t src, std::int32_t dst, std::int64_t bytes,
                   std::uint64_t window, TimeNs post_time,
                   std::int64_t dst_tag, std::int32_t msgs,
                   bool priority) {
  AMR_CHECK(src != dst);
  AMR_CHECK_MSG(find_exchange(window) >= 0,
                "isend outside an open exchange window");
  const TransferTiming t =
      fabric_.transfer(src, dst, bytes, post_time, msgs);
  std::uint64_t flow_id = 0;
  if (tracer_ != nullptr) {
    // Flow origin sits 1 ns inside the sender's pack span (which ends at
    // post_time) so Perfetto binds the arrow to that slice. Priority
    // promotions (critical-path send ordering) get their own flow name
    // so a trace shows which transfers jumped the queue.
    flow_id = tracer_->flow_begin(
        src, TraceCat::kMsg, priority ? "p2p-priority" : "p2p",
        post_time > 0 ? post_time - 1 : post_time, bytes, dst);
  }
  const PendingDelivery d{window, dst, src, dst_tag, bytes, flow_id};
  if (sharded_ == nullptr) {
    engine_.schedule_at(t.delivery, this, alloc_delivery(0, d));
    return t.sender_release;
  }
  // Sharded: allocate in the sending shard's pool (single-writer), key
  // the delivery by (source rank, per-source send sequence) so its
  // equal-time dispatch position is independent of the shard layout, and
  // route cross-shard deliveries through the epoch mailbox. The fabric
  // guarantees cross-node delivery >= post_time + lookahead, so a posted
  // event always lands beyond the destination shard's current epoch.
  const std::int32_t src_shard = sharded_->shard_of_rank(src);
  const std::int32_t dst_shard = sharded_->shard_of_rank(dst);
  const std::uint64_t key =
      event_key::delivery(src, send_seq_[static_cast<std::size_t>(src)]++);
  const std::uint64_t tag = alloc_delivery(src_shard, d);
  if (src_shard == dst_shard)
    sharded_->shard(src_shard).schedule_keyed(t.delivery, key, this, tag);
  else
    sharded_->post(src_shard, dst_shard, t.delivery, key, this, tag);
  return t.sender_release;
}

bool Comm::wait_recvs(std::int32_t rank, std::uint64_t window,
                      TimeNs wait_start) {
  const std::ptrdiff_t xi = find_exchange(window);
  AMR_CHECK(xi >= 0);
  ExchangeState& state = exchanges_[static_cast<std::size_t>(xi)];
  const auto r = static_cast<std::size_t>(rank);
  if (state.arrived[r] >= state.expected[r]) return true;
  (void)wait_start;
  AMR_CHECK_MSG(state.waiting[r] == 0, "rank already waiting on window");
  state.waiting[r] = 1;
  return false;
}

bool Comm::exchange_complete(std::uint64_t window) const {
  const std::ptrdiff_t xi = find_exchange(window);
  AMR_CHECK(xi >= 0);
  const ExchangeState& state = exchanges_[static_cast<std::size_t>(xi)];
  for (std::size_t r = 0; r < state.expected.size(); ++r)
    if (state.arrived[r] != state.expected[r]) return false;
  return true;
}

void Comm::end_exchange(std::uint64_t window) {
  const std::ptrdiff_t xi = find_exchange(window);
  AMR_CHECK(xi >= 0);
  ExchangeState& state = exchanges_[static_cast<std::size_t>(xi)];
  AMR_CHECK_MSG(exchange_complete(window),
                "closing window with undelivered messages");
  state.open = false;  // slot (and its vectors) recycled by the next open
}

void Comm::enter_collective(std::uint64_t window, std::int32_t rank,
                            TimeNs entry_time) {
  AMR_CHECK(window < (1ULL << 31));
  AMR_CHECK(rank >= 0 && rank < nranks_);
  if (sharded_ != nullptr) {
    // Accumulate on the caller's shard; the merge (and the completion
    // check) happens at the next epoch barrier, where it is both
    // race-free and order-independent (counts add, entries max).
    auto& list =
        shard_collectives_[static_cast<std::size_t>(
            sharded_->shard_of_rank(rank))];
    for (CollectiveState& c : list)
      if (c.window == window) {
        ++c.entered;
        c.max_entry = std::max(c.max_entry, entry_time);
        return;
      }
    list.push_back(CollectiveState{window, 1, entry_time});
    return;
  }
  CollectiveState* found = nullptr;
  for (auto& c : collectives_)
    if (c.window == window) {
      found = &c;
      break;
    }
  if (found == nullptr) {
    collectives_.push_back(CollectiveState{window, 0, 0});
    found = &collectives_.back();
  }
  CollectiveState& state = *found;
  ++state.entered;
  state.max_entry = std::max(state.max_entry, entry_time);
  AMR_CHECK_MSG(state.entered <= nranks_,
                "rank entered collective twice in one window");
  if (state.entered == nranks_) {
    const TimeNs done = state.max_entry + collective_overhead_;
    engine_.schedule_at(done, this, kCollectiveBit | (window << 32));
  }
}

void Comm::on_epoch_barrier() {
  // Return cross-shard delivery frees to their owning pools. The lists
  // are per dispatching shard and appended in that shard's dispatch
  // order, so the free-list contents stay deterministic.
  for (std::vector<std::uint64_t>& frees : foreign_frees_) {
    for (const std::uint64_t tag : frees)
      pools_[tag >> kPoolShardShift].free_slots.push_back(tag & kSlotMask);
    frees.clear();
  }
  // Merge per-shard collective entries (commutative, so the shard
  // iteration order cannot matter), then fire any completed collective
  // into every shard: each shard's dispatch notifies its own rank range.
  for (std::vector<CollectiveState>& list : shard_collectives_) {
    for (const CollectiveState& e : list) {
      CollectiveState* found = nullptr;
      for (CollectiveState& c : collectives_)
        if (c.window == e.window) {
          found = &c;
          break;
        }
      if (found == nullptr) {
        collectives_.push_back(e);
      } else {
        found->entered += e.entered;
        found->max_entry = std::max(found->max_entry, e.max_entry);
      }
    }
    list.clear();
  }
  for (std::size_t i = 0; i < collectives_.size();) {
    CollectiveState& c = collectives_[i];
    AMR_CHECK_MSG(c.entered <= nranks_,
                  "rank entered collective twice in one window");
    if (c.entered < nranks_) {
      ++i;
      continue;
    }
    const std::uint64_t window = c.window;
    const TimeNs done = c.max_entry + collective_overhead_;
    // Remove before scheduling: the sharded dispatch path does not
    // consult collectives_ (window and time ride in the tag and event).
    collectives_[i] = collectives_.back();
    collectives_.pop_back();
    for (std::int32_t s = 0; s < sharded_->num_shards(); ++s)
      sharded_->shard(s).schedule_keyed(done, event_key::collective(window),
                                        this,
                                        kCollectiveBit | (window << 32));
  }
}

void Comm::on_event(Engine& engine, std::uint64_t tag) {
  if (tag & kCollectiveBit) {
    const std::uint64_t window = (tag & ~kCollectiveBit) >> 32;
    if (sharded_ != nullptr) {
      // Per-shard completion event: notify only this shard's ranks (in
      // rank order; the global notification order across shards is not
      // observable — each rank's continuation stays in its own shard).
      const auto [first, last] = sharded_->rank_range(engine.shard_id());
      for (std::int32_t r = first; r < last; ++r) {
        RankEndpoint* ep = endpoints_[static_cast<std::size_t>(r)];
        AMR_CHECK(ep != nullptr);
        ep->on_collective_done(engine, window, engine.now());
      }
      return;
    }
    std::size_t ci = collectives_.size();
    for (std::size_t i = 0; i < collectives_.size(); ++i)
      if (collectives_[i].window == window) {
        ci = i;
        break;
      }
    AMR_CHECK(ci < collectives_.size());
    // Remove before the callbacks: a rank may re-enter the next window's
    // collective from on_collective_done.
    collectives_[ci] = collectives_.back();
    collectives_.pop_back();
    for (std::int32_t r = 0; r < nranks_; ++r) {
      RankEndpoint* ep = endpoints_[static_cast<std::size_t>(r)];
      AMR_CHECK(ep != nullptr);
      ep->on_collective_done(engine, window, engine.now());
    }
    return;
  }
  // Message delivery.
  const std::size_t pool_shard = tag >> kPoolShardShift;
  const std::uint64_t slot = tag & kSlotMask;
  const PendingDelivery d = pools_[pool_shard].deliveries[slot];
  if (sharded_ != nullptr &&
      static_cast<std::size_t>(engine.shard_id()) != pool_shard)
    foreign_frees_[static_cast<std::size_t>(engine.shard_id())].push_back(
        tag);
  else
    pools_[pool_shard].free_slots.push_back(slot);
  const std::uint64_t window = d.window;
  const std::int32_t rank = d.dst;
  const std::ptrdiff_t xi = find_exchange(window);
  AMR_CHECK(xi >= 0);
  const auto r = static_cast<std::size_t>(rank);
  {
    ExchangeState& state = exchanges_[static_cast<std::size_t>(xi)];
    ++state.arrived[r];
    state.last_delivery[r] = engine.now();
    if (tracer_ != nullptr)
      tracer_->flow_end(d.dst, TraceCat::kMsg, "p2p", engine.now(),
                        d.flow_id, d.bytes, d.src);
    AMR_CHECK_MSG(state.arrived[r] <= state.expected[r],
                  "more deliveries than expected; window mismatch");
  }
  if (RankEndpoint* ep = endpoints_[r]; ep != nullptr)
    ep->on_message(engine, window, engine.now(), d.src, d.dst_tag);
  // Re-index after the callback: slot indices are stable, but the pool
  // vector may have grown if the endpoint opened a window.
  ExchangeState& state = exchanges_[static_cast<std::size_t>(xi)];
  if (state.waiting[r] != 0 && state.arrived[r] == state.expected[r]) {
    state.waiting[r] = 0;
    RankEndpoint* ep = endpoints_[r];
    AMR_CHECK(ep != nullptr);
    ep->on_recvs_ready(engine, window, engine.now(), d.src);
  }
}

}  // namespace amr
