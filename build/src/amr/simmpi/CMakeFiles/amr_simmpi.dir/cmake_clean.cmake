file(REMOVE_RECURSE
  "CMakeFiles/amr_simmpi.dir/comm.cpp.o"
  "CMakeFiles/amr_simmpi.dir/comm.cpp.o.d"
  "libamr_simmpi.a"
  "libamr_simmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amr_simmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
