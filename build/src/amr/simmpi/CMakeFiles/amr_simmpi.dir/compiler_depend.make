# Empty compiler generated dependencies file for amr_simmpi.
# This may be replaced when dependencies are built.
