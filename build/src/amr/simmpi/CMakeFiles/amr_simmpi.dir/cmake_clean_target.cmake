file(REMOVE_RECURSE
  "libamr_simmpi.a"
)
