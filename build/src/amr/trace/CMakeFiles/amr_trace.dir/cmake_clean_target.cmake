file(REMOVE_RECURSE
  "libamr_trace.a"
)
