file(REMOVE_RECURSE
  "CMakeFiles/amr_trace.dir/chrome_export.cpp.o"
  "CMakeFiles/amr_trace.dir/chrome_export.cpp.o.d"
  "CMakeFiles/amr_trace.dir/json_check.cpp.o"
  "CMakeFiles/amr_trace.dir/json_check.cpp.o.d"
  "CMakeFiles/amr_trace.dir/trace_tables.cpp.o"
  "CMakeFiles/amr_trace.dir/trace_tables.cpp.o.d"
  "CMakeFiles/amr_trace.dir/tracer.cpp.o"
  "CMakeFiles/amr_trace.dir/tracer.cpp.o.d"
  "libamr_trace.a"
  "libamr_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amr_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
