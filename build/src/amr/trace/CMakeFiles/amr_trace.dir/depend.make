# Empty dependencies file for amr_trace.
# This may be replaced when dependencies are built.
