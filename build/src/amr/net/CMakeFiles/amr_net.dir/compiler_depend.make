# Empty compiler generated dependencies file for amr_net.
# This may be replaced when dependencies are built.
