file(REMOVE_RECURSE
  "CMakeFiles/amr_net.dir/fabric.cpp.o"
  "CMakeFiles/amr_net.dir/fabric.cpp.o.d"
  "libamr_net.a"
  "libamr_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amr_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
