file(REMOVE_RECURSE
  "libamr_net.a"
)
