file(REMOVE_RECURSE
  "libamr_des.a"
)
