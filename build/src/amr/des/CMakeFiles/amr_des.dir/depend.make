# Empty dependencies file for amr_des.
# This may be replaced when dependencies are built.
