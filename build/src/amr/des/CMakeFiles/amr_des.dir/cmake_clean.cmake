file(REMOVE_RECURSE
  "CMakeFiles/amr_des.dir/engine.cpp.o"
  "CMakeFiles/amr_des.dir/engine.cpp.o.d"
  "libamr_des.a"
  "libamr_des.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amr_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
