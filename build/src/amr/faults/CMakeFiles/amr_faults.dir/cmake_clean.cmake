file(REMOVE_RECURSE
  "CMakeFiles/amr_faults.dir/health.cpp.o"
  "CMakeFiles/amr_faults.dir/health.cpp.o.d"
  "CMakeFiles/amr_faults.dir/injector.cpp.o"
  "CMakeFiles/amr_faults.dir/injector.cpp.o.d"
  "libamr_faults.a"
  "libamr_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amr_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
