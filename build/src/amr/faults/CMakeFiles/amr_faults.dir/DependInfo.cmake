
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/amr/faults/health.cpp" "src/amr/faults/CMakeFiles/amr_faults.dir/health.cpp.o" "gcc" "src/amr/faults/CMakeFiles/amr_faults.dir/health.cpp.o.d"
  "/root/repo/src/amr/faults/injector.cpp" "src/amr/faults/CMakeFiles/amr_faults.dir/injector.cpp.o" "gcc" "src/amr/faults/CMakeFiles/amr_faults.dir/injector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/amr/common/CMakeFiles/amr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/amr/topo/CMakeFiles/amr_topo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
