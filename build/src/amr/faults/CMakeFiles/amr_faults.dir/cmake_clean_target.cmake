file(REMOVE_RECURSE
  "libamr_faults.a"
)
