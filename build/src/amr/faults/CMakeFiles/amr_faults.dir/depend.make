# Empty dependencies file for amr_faults.
# This may be replaced when dependencies are built.
