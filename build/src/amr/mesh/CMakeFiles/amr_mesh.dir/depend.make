# Empty dependencies file for amr_mesh.
# This may be replaced when dependencies are built.
