
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/amr/mesh/generators.cpp" "src/amr/mesh/CMakeFiles/amr_mesh.dir/generators.cpp.o" "gcc" "src/amr/mesh/CMakeFiles/amr_mesh.dir/generators.cpp.o.d"
  "/root/repo/src/amr/mesh/hilbert.cpp" "src/amr/mesh/CMakeFiles/amr_mesh.dir/hilbert.cpp.o" "gcc" "src/amr/mesh/CMakeFiles/amr_mesh.dir/hilbert.cpp.o.d"
  "/root/repo/src/amr/mesh/mesh.cpp" "src/amr/mesh/CMakeFiles/amr_mesh.dir/mesh.cpp.o" "gcc" "src/amr/mesh/CMakeFiles/amr_mesh.dir/mesh.cpp.o.d"
  "/root/repo/src/amr/mesh/morton.cpp" "src/amr/mesh/CMakeFiles/amr_mesh.dir/morton.cpp.o" "gcc" "src/amr/mesh/CMakeFiles/amr_mesh.dir/morton.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/amr/common/CMakeFiles/amr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
