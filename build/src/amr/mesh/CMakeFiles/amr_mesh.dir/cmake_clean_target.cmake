file(REMOVE_RECURSE
  "libamr_mesh.a"
)
