file(REMOVE_RECURSE
  "CMakeFiles/amr_mesh.dir/generators.cpp.o"
  "CMakeFiles/amr_mesh.dir/generators.cpp.o.d"
  "CMakeFiles/amr_mesh.dir/hilbert.cpp.o"
  "CMakeFiles/amr_mesh.dir/hilbert.cpp.o.d"
  "CMakeFiles/amr_mesh.dir/mesh.cpp.o"
  "CMakeFiles/amr_mesh.dir/mesh.cpp.o.d"
  "CMakeFiles/amr_mesh.dir/morton.cpp.o"
  "CMakeFiles/amr_mesh.dir/morton.cpp.o.d"
  "libamr_mesh.a"
  "libamr_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amr_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
