file(REMOVE_RECURSE
  "CMakeFiles/amr_exec.dir/critical_path.cpp.o"
  "CMakeFiles/amr_exec.dir/critical_path.cpp.o.d"
  "CMakeFiles/amr_exec.dir/overlap.cpp.o"
  "CMakeFiles/amr_exec.dir/overlap.cpp.o.d"
  "CMakeFiles/amr_exec.dir/rank_runtime.cpp.o"
  "CMakeFiles/amr_exec.dir/rank_runtime.cpp.o.d"
  "CMakeFiles/amr_exec.dir/step_executor.cpp.o"
  "CMakeFiles/amr_exec.dir/step_executor.cpp.o.d"
  "CMakeFiles/amr_exec.dir/work.cpp.o"
  "CMakeFiles/amr_exec.dir/work.cpp.o.d"
  "libamr_exec.a"
  "libamr_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amr_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
