file(REMOVE_RECURSE
  "libamr_exec.a"
)
