# Empty compiler generated dependencies file for amr_exec.
# This may be replaced when dependencies are built.
