file(REMOVE_RECURSE
  "libamr_sim.a"
)
