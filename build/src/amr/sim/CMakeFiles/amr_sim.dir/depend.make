# Empty dependencies file for amr_sim.
# This may be replaced when dependencies are built.
