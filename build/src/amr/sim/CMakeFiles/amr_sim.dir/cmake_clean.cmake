file(REMOVE_RECURSE
  "CMakeFiles/amr_sim.dir/exchange_bench.cpp.o"
  "CMakeFiles/amr_sim.dir/exchange_bench.cpp.o.d"
  "CMakeFiles/amr_sim.dir/simulation.cpp.o"
  "CMakeFiles/amr_sim.dir/simulation.cpp.o.d"
  "libamr_sim.a"
  "libamr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
