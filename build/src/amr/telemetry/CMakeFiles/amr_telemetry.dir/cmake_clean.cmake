file(REMOVE_RECURSE
  "CMakeFiles/amr_telemetry.dir/binary_io.cpp.o"
  "CMakeFiles/amr_telemetry.dir/binary_io.cpp.o.d"
  "CMakeFiles/amr_telemetry.dir/collector.cpp.o"
  "CMakeFiles/amr_telemetry.dir/collector.cpp.o.d"
  "CMakeFiles/amr_telemetry.dir/csv_io.cpp.o"
  "CMakeFiles/amr_telemetry.dir/csv_io.cpp.o.d"
  "CMakeFiles/amr_telemetry.dir/detectors.cpp.o"
  "CMakeFiles/amr_telemetry.dir/detectors.cpp.o.d"
  "CMakeFiles/amr_telemetry.dir/query.cpp.o"
  "CMakeFiles/amr_telemetry.dir/query.cpp.o.d"
  "CMakeFiles/amr_telemetry.dir/table.cpp.o"
  "CMakeFiles/amr_telemetry.dir/table.cpp.o.d"
  "CMakeFiles/amr_telemetry.dir/triggers.cpp.o"
  "CMakeFiles/amr_telemetry.dir/triggers.cpp.o.d"
  "libamr_telemetry.a"
  "libamr_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amr_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
