
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/amr/telemetry/binary_io.cpp" "src/amr/telemetry/CMakeFiles/amr_telemetry.dir/binary_io.cpp.o" "gcc" "src/amr/telemetry/CMakeFiles/amr_telemetry.dir/binary_io.cpp.o.d"
  "/root/repo/src/amr/telemetry/collector.cpp" "src/amr/telemetry/CMakeFiles/amr_telemetry.dir/collector.cpp.o" "gcc" "src/amr/telemetry/CMakeFiles/amr_telemetry.dir/collector.cpp.o.d"
  "/root/repo/src/amr/telemetry/csv_io.cpp" "src/amr/telemetry/CMakeFiles/amr_telemetry.dir/csv_io.cpp.o" "gcc" "src/amr/telemetry/CMakeFiles/amr_telemetry.dir/csv_io.cpp.o.d"
  "/root/repo/src/amr/telemetry/detectors.cpp" "src/amr/telemetry/CMakeFiles/amr_telemetry.dir/detectors.cpp.o" "gcc" "src/amr/telemetry/CMakeFiles/amr_telemetry.dir/detectors.cpp.o.d"
  "/root/repo/src/amr/telemetry/query.cpp" "src/amr/telemetry/CMakeFiles/amr_telemetry.dir/query.cpp.o" "gcc" "src/amr/telemetry/CMakeFiles/amr_telemetry.dir/query.cpp.o.d"
  "/root/repo/src/amr/telemetry/table.cpp" "src/amr/telemetry/CMakeFiles/amr_telemetry.dir/table.cpp.o" "gcc" "src/amr/telemetry/CMakeFiles/amr_telemetry.dir/table.cpp.o.d"
  "/root/repo/src/amr/telemetry/triggers.cpp" "src/amr/telemetry/CMakeFiles/amr_telemetry.dir/triggers.cpp.o" "gcc" "src/amr/telemetry/CMakeFiles/amr_telemetry.dir/triggers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/amr/common/CMakeFiles/amr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/amr/topo/CMakeFiles/amr_topo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
