file(REMOVE_RECURSE
  "libamr_telemetry.a"
)
