# Empty compiler generated dependencies file for amr_telemetry.
# This may be replaced when dependencies are built.
