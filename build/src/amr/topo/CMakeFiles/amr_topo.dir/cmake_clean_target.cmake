file(REMOVE_RECURSE
  "libamr_topo.a"
)
