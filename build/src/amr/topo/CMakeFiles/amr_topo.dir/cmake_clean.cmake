file(REMOVE_RECURSE
  "CMakeFiles/amr_topo.dir/topology.cpp.o"
  "CMakeFiles/amr_topo.dir/topology.cpp.o.d"
  "libamr_topo.a"
  "libamr_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amr_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
