# Empty dependencies file for amr_topo.
# This may be replaced when dependencies are built.
