file(REMOVE_RECURSE
  "CMakeFiles/amr_placement.dir/baseline.cpp.o"
  "CMakeFiles/amr_placement.dir/baseline.cpp.o.d"
  "CMakeFiles/amr_placement.dir/cdp.cpp.o"
  "CMakeFiles/amr_placement.dir/cdp.cpp.o.d"
  "CMakeFiles/amr_placement.dir/chunked_cdp.cpp.o"
  "CMakeFiles/amr_placement.dir/chunked_cdp.cpp.o.d"
  "CMakeFiles/amr_placement.dir/cplx.cpp.o"
  "CMakeFiles/amr_placement.dir/cplx.cpp.o.d"
  "CMakeFiles/amr_placement.dir/exact.cpp.o"
  "CMakeFiles/amr_placement.dir/exact.cpp.o.d"
  "CMakeFiles/amr_placement.dir/graphcut.cpp.o"
  "CMakeFiles/amr_placement.dir/graphcut.cpp.o.d"
  "CMakeFiles/amr_placement.dir/lpt.cpp.o"
  "CMakeFiles/amr_placement.dir/lpt.cpp.o.d"
  "CMakeFiles/amr_placement.dir/metrics.cpp.o"
  "CMakeFiles/amr_placement.dir/metrics.cpp.o.d"
  "CMakeFiles/amr_placement.dir/registry.cpp.o"
  "CMakeFiles/amr_placement.dir/registry.cpp.o.d"
  "CMakeFiles/amr_placement.dir/zonal.cpp.o"
  "CMakeFiles/amr_placement.dir/zonal.cpp.o.d"
  "libamr_placement.a"
  "libamr_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amr_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
