file(REMOVE_RECURSE
  "libamr_placement.a"
)
