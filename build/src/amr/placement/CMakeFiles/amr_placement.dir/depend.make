# Empty dependencies file for amr_placement.
# This may be replaced when dependencies are built.
