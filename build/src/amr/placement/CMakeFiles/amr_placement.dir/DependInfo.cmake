
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/amr/placement/baseline.cpp" "src/amr/placement/CMakeFiles/amr_placement.dir/baseline.cpp.o" "gcc" "src/amr/placement/CMakeFiles/amr_placement.dir/baseline.cpp.o.d"
  "/root/repo/src/amr/placement/cdp.cpp" "src/amr/placement/CMakeFiles/amr_placement.dir/cdp.cpp.o" "gcc" "src/amr/placement/CMakeFiles/amr_placement.dir/cdp.cpp.o.d"
  "/root/repo/src/amr/placement/chunked_cdp.cpp" "src/amr/placement/CMakeFiles/amr_placement.dir/chunked_cdp.cpp.o" "gcc" "src/amr/placement/CMakeFiles/amr_placement.dir/chunked_cdp.cpp.o.d"
  "/root/repo/src/amr/placement/cplx.cpp" "src/amr/placement/CMakeFiles/amr_placement.dir/cplx.cpp.o" "gcc" "src/amr/placement/CMakeFiles/amr_placement.dir/cplx.cpp.o.d"
  "/root/repo/src/amr/placement/exact.cpp" "src/amr/placement/CMakeFiles/amr_placement.dir/exact.cpp.o" "gcc" "src/amr/placement/CMakeFiles/amr_placement.dir/exact.cpp.o.d"
  "/root/repo/src/amr/placement/graphcut.cpp" "src/amr/placement/CMakeFiles/amr_placement.dir/graphcut.cpp.o" "gcc" "src/amr/placement/CMakeFiles/amr_placement.dir/graphcut.cpp.o.d"
  "/root/repo/src/amr/placement/lpt.cpp" "src/amr/placement/CMakeFiles/amr_placement.dir/lpt.cpp.o" "gcc" "src/amr/placement/CMakeFiles/amr_placement.dir/lpt.cpp.o.d"
  "/root/repo/src/amr/placement/metrics.cpp" "src/amr/placement/CMakeFiles/amr_placement.dir/metrics.cpp.o" "gcc" "src/amr/placement/CMakeFiles/amr_placement.dir/metrics.cpp.o.d"
  "/root/repo/src/amr/placement/registry.cpp" "src/amr/placement/CMakeFiles/amr_placement.dir/registry.cpp.o" "gcc" "src/amr/placement/CMakeFiles/amr_placement.dir/registry.cpp.o.d"
  "/root/repo/src/amr/placement/zonal.cpp" "src/amr/placement/CMakeFiles/amr_placement.dir/zonal.cpp.o" "gcc" "src/amr/placement/CMakeFiles/amr_placement.dir/zonal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/amr/common/CMakeFiles/amr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/amr/mesh/CMakeFiles/amr_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/amr/topo/CMakeFiles/amr_topo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
