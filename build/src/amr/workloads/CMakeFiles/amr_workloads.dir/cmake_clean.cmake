file(REMOVE_RECURSE
  "CMakeFiles/amr_workloads.dir/cooling.cpp.o"
  "CMakeFiles/amr_workloads.dir/cooling.cpp.o.d"
  "CMakeFiles/amr_workloads.dir/sedov.cpp.o"
  "CMakeFiles/amr_workloads.dir/sedov.cpp.o.d"
  "CMakeFiles/amr_workloads.dir/synthetic.cpp.o"
  "CMakeFiles/amr_workloads.dir/synthetic.cpp.o.d"
  "libamr_workloads.a"
  "libamr_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amr_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
