file(REMOVE_RECURSE
  "libamr_workloads.a"
)
