# Empty compiler generated dependencies file for amr_workloads.
# This may be replaced when dependencies are built.
