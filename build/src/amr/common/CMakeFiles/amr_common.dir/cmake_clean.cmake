file(REMOVE_RECURSE
  "CMakeFiles/amr_common.dir/log.cpp.o"
  "CMakeFiles/amr_common.dir/log.cpp.o.d"
  "CMakeFiles/amr_common.dir/rng.cpp.o"
  "CMakeFiles/amr_common.dir/rng.cpp.o.d"
  "CMakeFiles/amr_common.dir/stats.cpp.o"
  "CMakeFiles/amr_common.dir/stats.cpp.o.d"
  "libamr_common.a"
  "libamr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
