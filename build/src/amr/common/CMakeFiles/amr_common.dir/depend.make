# Empty dependencies file for amr_common.
# This may be replaced when dependencies are built.
