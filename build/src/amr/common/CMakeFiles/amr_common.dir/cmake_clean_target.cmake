file(REMOVE_RECURSE
  "libamr_common.a"
)
