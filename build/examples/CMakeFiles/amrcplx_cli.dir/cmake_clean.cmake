file(REMOVE_RECURSE
  "CMakeFiles/amrcplx_cli.dir/amrcplx_cli.cpp.o"
  "CMakeFiles/amrcplx_cli.dir/amrcplx_cli.cpp.o.d"
  "amrcplx"
  "amrcplx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amrcplx_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
