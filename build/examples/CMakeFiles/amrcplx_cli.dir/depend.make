# Empty dependencies file for amrcplx_cli.
# This may be replaced when dependencies are built.
