# Empty compiler generated dependencies file for telemetry_triage.
# This may be replaced when dependencies are built.
