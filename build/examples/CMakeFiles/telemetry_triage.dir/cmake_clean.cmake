file(REMOVE_RECURSE
  "CMakeFiles/telemetry_triage.dir/telemetry_triage.cpp.o"
  "CMakeFiles/telemetry_triage.dir/telemetry_triage.cpp.o.d"
  "telemetry_triage"
  "telemetry_triage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telemetry_triage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
