file(REMOVE_RECURSE
  "CMakeFiles/trace_json_validate.dir/trace_json_validate.cpp.o"
  "CMakeFiles/trace_json_validate.dir/trace_json_validate.cpp.o.d"
  "trace_json_validate"
  "trace_json_validate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_json_validate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
