# Empty dependencies file for trace_json_validate.
# This may be replaced when dependencies are built.
