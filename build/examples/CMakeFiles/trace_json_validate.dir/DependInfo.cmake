
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/trace_json_validate.cpp" "examples/CMakeFiles/trace_json_validate.dir/trace_json_validate.cpp.o" "gcc" "examples/CMakeFiles/trace_json_validate.dir/trace_json_validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/amr/sim/CMakeFiles/amr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/amr/faults/CMakeFiles/amr_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/amr/exec/CMakeFiles/amr_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/amr/placement/CMakeFiles/amr_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/amr/simmpi/CMakeFiles/amr_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/amr/net/CMakeFiles/amr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/amr/des/CMakeFiles/amr_des.dir/DependInfo.cmake"
  "/root/repo/build/src/amr/trace/CMakeFiles/amr_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/amr/telemetry/CMakeFiles/amr_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/amr/topo/CMakeFiles/amr_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/amr/workloads/CMakeFiles/amr_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/amr/mesh/CMakeFiles/amr_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/amr/common/CMakeFiles/amr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
