# Empty dependencies file for sedov_sim.
# This may be replaced when dependencies are built.
