file(REMOVE_RECURSE
  "CMakeFiles/sedov_sim.dir/sedov_sim.cpp.o"
  "CMakeFiles/sedov_sim.dir/sedov_sim.cpp.o.d"
  "sedov_sim"
  "sedov_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sedov_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
