# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(trace_smoke_run "/root/repo/build/examples/amrcplx" "run" "--workload=sedov" "--policy=baseline" "--ranks=16" "--steps=4" "--trace-out=/root/repo/build/examples/smoke_trace.json")
set_tests_properties(trace_smoke_run PROPERTIES  FIXTURES_SETUP "trace_smoke" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(trace_smoke_validate "/root/repo/build/examples/trace_json_validate" "/root/repo/build/examples/smoke_trace.json")
set_tests_properties(trace_smoke_validate PROPERTIES  FIXTURES_REQUIRED "trace_smoke" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
