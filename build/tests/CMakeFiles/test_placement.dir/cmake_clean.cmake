file(REMOVE_RECURSE
  "CMakeFiles/test_placement.dir/placement/baseline_test.cpp.o"
  "CMakeFiles/test_placement.dir/placement/baseline_test.cpp.o.d"
  "CMakeFiles/test_placement.dir/placement/cdp_test.cpp.o"
  "CMakeFiles/test_placement.dir/placement/cdp_test.cpp.o.d"
  "CMakeFiles/test_placement.dir/placement/cplx_test.cpp.o"
  "CMakeFiles/test_placement.dir/placement/cplx_test.cpp.o.d"
  "CMakeFiles/test_placement.dir/placement/graphcut_test.cpp.o"
  "CMakeFiles/test_placement.dir/placement/graphcut_test.cpp.o.d"
  "CMakeFiles/test_placement.dir/placement/lpt_test.cpp.o"
  "CMakeFiles/test_placement.dir/placement/lpt_test.cpp.o.d"
  "CMakeFiles/test_placement.dir/placement/metrics_test.cpp.o"
  "CMakeFiles/test_placement.dir/placement/metrics_test.cpp.o.d"
  "CMakeFiles/test_placement.dir/placement/properties_test.cpp.o"
  "CMakeFiles/test_placement.dir/placement/properties_test.cpp.o.d"
  "CMakeFiles/test_placement.dir/placement/zonal_test.cpp.o"
  "CMakeFiles/test_placement.dir/placement/zonal_test.cpp.o.d"
  "test_placement"
  "test_placement.pdb"
  "test_placement[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
