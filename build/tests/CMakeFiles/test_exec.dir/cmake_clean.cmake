file(REMOVE_RECURSE
  "CMakeFiles/test_exec.dir/exec/critical_path_test.cpp.o"
  "CMakeFiles/test_exec.dir/exec/critical_path_test.cpp.o.d"
  "CMakeFiles/test_exec.dir/exec/overlap_test.cpp.o"
  "CMakeFiles/test_exec.dir/exec/overlap_test.cpp.o.d"
  "CMakeFiles/test_exec.dir/exec/step_executor_test.cpp.o"
  "CMakeFiles/test_exec.dir/exec/step_executor_test.cpp.o.d"
  "CMakeFiles/test_exec.dir/exec/work_test.cpp.o"
  "CMakeFiles/test_exec.dir/exec/work_test.cpp.o.d"
  "test_exec"
  "test_exec.pdb"
  "test_exec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
