# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_mesh[1]_include.cmake")
include("/root/repo/build/tests/test_placement[1]_include.cmake")
include("/root/repo/build/tests/test_des[1]_include.cmake")
include("/root/repo/build/tests/test_topo[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_simmpi[1]_include.cmake")
include("/root/repo/build/tests/test_telemetry[1]_include.cmake")
include("/root/repo/build/tests/test_faults[1]_include.cmake")
include("/root/repo/build/tests/test_exec[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
