# Empty compiler generated dependencies file for bench_edgecut.
# This may be replaced when dependencies are built.
