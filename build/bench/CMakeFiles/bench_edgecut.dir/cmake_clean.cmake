file(REMOVE_RECURSE
  "CMakeFiles/bench_edgecut.dir/bench_edgecut.cpp.o"
  "CMakeFiles/bench_edgecut.dir/bench_edgecut.cpp.o.d"
  "bench_edgecut"
  "bench_edgecut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_edgecut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
