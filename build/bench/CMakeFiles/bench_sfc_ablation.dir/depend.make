# Empty dependencies file for bench_sfc_ablation.
# This may be replaced when dependencies are built.
