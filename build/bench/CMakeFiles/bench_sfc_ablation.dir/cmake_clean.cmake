file(REMOVE_RECURSE
  "CMakeFiles/bench_sfc_ablation.dir/bench_sfc_ablation.cpp.o"
  "CMakeFiles/bench_sfc_ablation.dir/bench_sfc_ablation.cpp.o.d"
  "bench_sfc_ablation"
  "bench_sfc_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sfc_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
