# Empty dependencies file for bench_fig4_critpath.
# This may be replaced when dependencies are built.
