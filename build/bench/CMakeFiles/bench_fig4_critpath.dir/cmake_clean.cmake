file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_critpath.dir/bench_fig4_critpath.cpp.o"
  "CMakeFiles/bench_fig4_critpath.dir/bench_fig4_critpath.cpp.o.d"
  "bench_fig4_critpath"
  "bench_fig4_critpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_critpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
