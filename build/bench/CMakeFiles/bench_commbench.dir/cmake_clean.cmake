file(REMOVE_RECURSE
  "CMakeFiles/bench_commbench.dir/bench_commbench.cpp.o"
  "CMakeFiles/bench_commbench.dir/bench_commbench.cpp.o.d"
  "bench_commbench"
  "bench_commbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_commbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
