# Empty dependencies file for bench_commbench.
# This may be replaced when dependencies are built.
