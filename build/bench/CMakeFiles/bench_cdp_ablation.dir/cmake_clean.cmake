file(REMOVE_RECURSE
  "CMakeFiles/bench_cdp_ablation.dir/bench_cdp_ablation.cpp.o"
  "CMakeFiles/bench_cdp_ablation.dir/bench_cdp_ablation.cpp.o.d"
  "bench_cdp_ablation"
  "bench_cdp_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cdp_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
