# Empty compiler generated dependencies file for bench_cdp_ablation.
# This may be replaced when dependencies are built.
