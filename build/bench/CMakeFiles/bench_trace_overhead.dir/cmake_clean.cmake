file(REMOVE_RECURSE
  "CMakeFiles/bench_trace_overhead.dir/bench_trace_overhead.cpp.o"
  "CMakeFiles/bench_trace_overhead.dir/bench_trace_overhead.cpp.o.d"
  "bench_trace_overhead"
  "bench_trace_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trace_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
