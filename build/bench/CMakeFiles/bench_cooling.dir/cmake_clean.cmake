file(REMOVE_RECURSE
  "CMakeFiles/bench_cooling.dir/bench_cooling.cpp.o"
  "CMakeFiles/bench_cooling.dir/bench_cooling.cpp.o.d"
  "bench_cooling"
  "bench_cooling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cooling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
