# Empty dependencies file for bench_cooling.
# This may be replaced when dependencies are built.
