# Empty compiler generated dependencies file for bench_telemetry_pipeline.
# This may be replaced when dependencies are built.
