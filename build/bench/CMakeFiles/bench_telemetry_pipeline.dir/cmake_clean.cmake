file(REMOVE_RECURSE
  "CMakeFiles/bench_telemetry_pipeline.dir/bench_telemetry_pipeline.cpp.o"
  "CMakeFiles/bench_telemetry_pipeline.dir/bench_telemetry_pipeline.cpp.o.d"
  "bench_telemetry_pipeline"
  "bench_telemetry_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_telemetry_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
