# Empty compiler generated dependencies file for bench_lpt_quality.
# This may be replaced when dependencies are built.
