file(REMOVE_RECURSE
  "CMakeFiles/bench_lpt_quality.dir/bench_lpt_quality.cpp.o"
  "CMakeFiles/bench_lpt_quality.dir/bench_lpt_quality.cpp.o.d"
  "bench_lpt_quality"
  "bench_lpt_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lpt_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
