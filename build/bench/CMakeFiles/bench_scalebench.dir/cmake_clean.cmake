file(REMOVE_RECURSE
  "CMakeFiles/bench_scalebench.dir/bench_scalebench.cpp.o"
  "CMakeFiles/bench_scalebench.dir/bench_scalebench.cpp.o.d"
  "bench_scalebench"
  "bench_scalebench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scalebench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
