# Empty compiler generated dependencies file for bench_scalebench.
# This may be replaced when dependencies are built.
